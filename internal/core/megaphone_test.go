package core_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"megaphone/internal/core"
	"megaphone/internal/dataflow"
)

// wordCount runs a migrating word-count over the given inputs with the given
// migration plan (time -> moves), and returns the final count per key as
// observed downstream, along with the application log (time, bin, worker).
type appEvent struct {
	t      core.Time
	bin    int
	worker int
}

type wcResult struct {
	finals map[uint64]int64
	log    []appEvent
}

func runWordCount(t *testing.T, workers, logBins int, inputs [][]kvAt, plan map[core.Time][]core.Move, transfer core.Transfer) wcResult {
	t.Helper()
	var mu sync.Mutex
	res := wcResult{finals: make(map[uint64]int64)}

	handle := &core.Handle[core.KV[uint64, int64], core.MapState[uint64, int64], core.KV[uint64, int64]]{}
	handle.OnApply = func(tm core.Time, bin, worker int) {
		mu.Lock()
		res.log = append(res.log, appEvent{t: tm, bin: bin, worker: worker})
		mu.Unlock()
	}

	exec := dataflow.NewExecution(dataflow.Config{Workers: workers})
	var dataIns []*dataflow.InputHandle[core.KV[uint64, int64]]
	var ctlIns []*dataflow.InputHandle[core.Move]
	exec.Build(func(w *dataflow.Worker) {
		ctl, ctlStream := dataflow.NewInput[core.Move](w, "control")
		ctlIns = append(ctlIns, ctl)
		in, data := dataflow.NewInput[core.KV[uint64, int64]](w, "input")
		dataIns = append(dataIns, in)
		counts := core.StateMachine(w,
			core.Config{Name: "count", LogBins: logBins, Transfer: transfer},
			ctlStream, data,
			func(k uint64) uint64 { return core.Mix64(k) },
			func(k uint64, v int64, st *int64, emit func(core.KV[uint64, int64])) {
				*st += v
				emit(core.KV[uint64, int64]{Key: k, Val: *st})
			},
			handle)
		idx := w.Index()
		_ = idx
		sink := w.NewOp("sink", 0)
		dataflow.Connect(sink, counts, dataflow.Pipeline[core.KV[uint64, int64]]{})
		sink.Build(func(c *dataflow.OpCtx) {
			dataflow.ForEachBatch(c, 0, func(_ core.Time, out []core.KV[uint64, int64]) {
				mu.Lock()
				for _, kv := range out {
					if kv.Val > res.finals[kv.Key] {
						res.finals[kv.Key] = kv.Val
					}
				}
				mu.Unlock()
			})
		})
	})
	exec.Start()

	driveWordCount(inputs, plan, dataIns, ctlIns)
	exec.Wait()
	return res
}

// driveWordCount feeds data and control in lockstep epochs and closes the
// handles. Control moves at time tm are sent on worker 0's control handle
// before advancing all handles.
func driveWordCount(inputs [][]kvAt, plan map[core.Time][]core.Move, dataIns []*dataflow.InputHandle[core.KV[uint64, int64]], ctlIns []*dataflow.InputHandle[core.Move]) {
	maxTime := core.Time(0)
	for _, in := range inputs {
		for _, kv := range in {
			if kv.t > maxTime {
				maxTime = kv.t
			}
		}
	}
	for tm := range plan {
		if tm > maxTime {
			maxTime = tm
		}
	}
	for now := core.Time(0); now <= maxTime; now++ {
		if moves, ok := plan[now]; ok {
			ctlIns[0].SendAt(now, moves...)
		}
		for wi, in := range inputs {
			for _, kv := range in {
				if kv.t == now {
					dataIns[wi].SendAt(now, core.KV[uint64, int64]{Key: kv.key, Val: kv.val})
				}
			}
		}
		for _, h := range ctlIns {
			h.AdvanceTo(now + 1)
		}
		for _, h := range dataIns {
			h.AdvanceTo(now + 1)
		}
	}
	for _, h := range ctlIns {
		h.Close()
	}
	for _, h := range dataIns {
		h.Close()
	}
}

type kvAt struct {
	t   core.Time
	key uint64
	val int64
}

// TestCorrectnessUnderMigration (Property 1): outputs of a migrated
// execution equal those of a single-worker reference execution, for random
// inputs and a random migration plan.
func TestCorrectnessUnderMigration(t *testing.T) {
	const workers, logBins = 4, 4
	rng := rand.New(rand.NewSource(42))

	inputs := make([][]kvAt, workers)
	expect := make(map[uint64]int64)
	for i := 0; i < 2000; i++ {
		k := uint64(rng.Intn(64))
		v := int64(rng.Intn(10) + 1)
		tm := core.Time(rng.Intn(100))
		inputs[i%workers] = append(inputs[i%workers], kvAt{t: tm, key: k, val: v})
		expect[k] += v
	}

	// Random plan: several migration times, random bins to random workers.
	plan := make(map[core.Time][]core.Move)
	for _, tm := range []core.Time{20, 45, 70} {
		var moves []core.Move
		for b := 0; b < 1<<logBins; b++ {
			if rng.Intn(2) == 0 {
				moves = append(moves, core.Move{Bin: b, Worker: rng.Intn(workers)})
			}
		}
		plan[tm] = moves
	}

	for _, transfer := range []core.Codec{core.TransferGob, core.TransferBinary, core.TransferDirect} {
		res := runWordCount(t, workers, logBins, inputs, plan, transfer)
		if len(res.finals) != len(expect) {
			t.Fatalf("transfer=%s: got %d keys, want %d", transfer.Name(), len(res.finals), len(expect))
		}
		for k, want := range expect {
			if got := res.finals[k]; got != want {
				t.Errorf("transfer=%s: count[%d] = %d, want %d", transfer.Name(), k, got, want)
			}
		}
	}
}

// TestMigrationProperty (Property 2): every update at time tm is applied at
// the worker the configuration function assigns for (tm, bin).
func TestMigrationProperty(t *testing.T) {
	const workers, logBins = 3, 3
	rng := rand.New(rand.NewSource(7))

	inputs := make([][]kvAt, workers)
	for i := 0; i < 1500; i++ {
		inputs[i%workers] = append(inputs[i%workers], kvAt{
			t:   core.Time(rng.Intn(120)),
			key: uint64(rng.Intn(256)),
			val: 1,
		})
	}
	plan := map[core.Time][]core.Move{
		30: {{Bin: 0, Worker: 2}, {Bin: 1, Worker: 2}, {Bin: 2, Worker: 0}},
		60: {{Bin: 0, Worker: 1}, {Bin: 5, Worker: 0}},
		90: {{Bin: 1, Worker: 0}, {Bin: 2, Worker: 2}, {Bin: 7, Worker: 1}},
	}

	res := runWordCount(t, workers, logBins, inputs, plan, core.TransferGob)

	// Reference configuration function.
	owner := func(bin int, tm core.Time) int {
		w := core.InitialWorker(bin, workers)
		var times []core.Time
		for pt := range plan {
			times = append(times, pt)
		}
		// ascending
		for i := 0; i < len(times); i++ {
			for j := i + 1; j < len(times); j++ {
				if times[j] < times[i] {
					times[i], times[j] = times[j], times[i]
				}
			}
		}
		for _, pt := range times {
			if pt > tm {
				break
			}
			for _, m := range plan[pt] {
				if m.Bin == bin {
					w = m.Worker
				}
			}
		}
		return w
	}

	if len(res.log) == 0 {
		t.Fatal("no applications logged")
	}
	for _, ev := range res.log {
		if want := owner(ev.bin, ev.t); ev.worker != want {
			t.Errorf("update at t=%v bin=%d applied on worker %d, want %d", ev.t, ev.bin, ev.worker, want)
		}
	}
}

// TestCompletion (Property 3): after inputs and control close, the dataflow
// drains and Wait returns; and with an open control stream but advancing
// frontier, outputs keep flowing. Completion of Wait in other tests already
// covers the closed case; here we check mid-stream liveness explicitly.
func TestCompletion(t *testing.T) {
	const workers = 2
	exec := dataflow.NewExecution(dataflow.Config{Workers: workers})
	var dataIns []*dataflow.InputHandle[core.KV[uint64, int64]]
	var ctlIns []*dataflow.InputHandle[core.Move]
	var probe *dataflow.Probe
	exec.Build(func(w *dataflow.Worker) {
		ctl, ctlStream := dataflow.NewInput[core.Move](w, "control")
		ctlIns = append(ctlIns, ctl)
		in, data := dataflow.NewInput[core.KV[uint64, int64]](w, "input")
		dataIns = append(dataIns, in)
		counts := core.StateMachine(w, core.Config{Name: "count", LogBins: 3},
			ctlStream, data,
			func(k uint64) uint64 { return core.Mix64(k) },
			func(k uint64, v int64, st *int64, emit func(core.KV[uint64, int64])) {
				*st += v
				emit(core.KV[uint64, int64]{Key: k, Val: *st})
			}, nil)
		p := dataflow.NewProbe(w, counts)
		if w.Index() == 0 {
			probe = p
		}
	})
	exec.Start()

	for epoch := core.Time(0); epoch < 50; epoch++ {
		dataIns[int(epoch)%workers].SendAt(epoch, core.KV[uint64, int64]{Key: uint64(epoch), Val: 1})
		if epoch == 20 {
			ctlIns[0].SendAt(epoch, core.Move{Bin: 1, Worker: 1})
		}
		for _, h := range ctlIns {
			h.AdvanceTo(epoch + 1)
		}
		for _, h := range dataIns {
			h.AdvanceTo(epoch + 1)
		}
		// Liveness: the output frontier must reach the new epoch without
		// further input.
		for spin := 0; probe.Frontier() < epoch+1; spin++ {
			if spin > 1e8 {
				t.Fatalf("output frontier stuck at %v awaiting %v", probe.Frontier(), epoch+1)
			}
		}
	}
	for _, h := range ctlIns {
		h.Close()
	}
	for _, h := range dataIns {
		h.Close()
	}
	exec.Wait()
	if !probe.Done() {
		t.Fatal("probe not done after Wait")
	}
}

// TestNotificatorMigrates: post-dated records scheduled before a migration
// fire on the new owner after it.
func TestNotificatorMigrates(t *testing.T) {
	const workers = 2
	type rec struct {
		Key uint64
		Due core.Time
	}
	var mu sync.Mutex
	fired := make(map[uint64]int) // key -> worker where the notification fired

	handle := &core.Handle[rec, int64, string]{}

	exec := dataflow.NewExecution(dataflow.Config{Workers: workers})
	var dataIns []*dataflow.InputHandle[rec]
	var ctlIns []*dataflow.InputHandle[core.Move]
	exec.Build(func(w *dataflow.Worker) {
		ctl, ctlStream := dataflow.NewInput[core.Move](w, "control")
		ctlIns = append(ctlIns, ctl)
		in, data := dataflow.NewInput[rec](w, "input")
		dataIns = append(dataIns, in)
		idx := w.Index()
		out := core.Unary(w, core.Config{Name: "timer", LogBins: 2},
			ctlStream, data,
			func(r rec) uint64 { return core.Mix64(r.Key) },
			func() *int64 { return new(int64) },
			func(tm core.Time, r rec, st *int64, n *core.Notificator[rec, int64, string], emit func(string)) {
				if r.Due > tm {
					// First delivery: schedule for the due time.
					n.NotifyAt(r.Due, rec{Key: r.Key})
					return
				}
				mu.Lock()
				fired[r.Key] = idx
				mu.Unlock()
				emit(fmt.Sprintf("fired %d", r.Key))
			}, handle)
		sink := w.NewOp("sink", 0)
		dataflow.Connect(sink, out, dataflow.Pipeline[string]{})
		sink.Build(func(c *dataflow.OpCtx) {
			c.ForEach(0, func(core.Time, any) {})
		})
	})
	exec.Start()

	// Key 9 hashes to some bin; schedule its timer at t=5 due t=40, migrate
	// every bin to worker 1 at t=20.
	dataIns[0].SendAt(5, rec{Key: 9, Due: 40})
	var moves []core.Move
	for b := 0; b < 4; b++ {
		moves = append(moves, core.Move{Bin: b, Worker: 1})
	}
	ctlIns[0].SendAt(20, moves...)
	for e := core.Time(0); e <= 50; e++ {
		for _, h := range ctlIns {
			h.AdvanceTo(e + 1)
		}
		for _, h := range dataIns {
			h.AdvanceTo(e + 1)
		}
	}
	for _, h := range ctlIns {
		h.Close()
	}
	for _, h := range dataIns {
		h.Close()
	}
	exec.Wait()

	mu.Lock()
	defer mu.Unlock()
	if w, ok := fired[9]; !ok {
		t.Fatal("timer never fired")
	} else if w != 1 {
		t.Errorf("timer fired on worker %d, want 1 (after migration)", w)
	}
}
