package core

import (
	"fmt"
	"strings"
	"testing"

	"megaphone/internal/binenc"
)

// makeDelta builds a delta with deterministic pseudo-random sparse cells.
func makeDelta(proc, first, workers, bins int, seq uint64, density int) *LoadDelta {
	d := &LoadDelta{Proc: proc, Seq: seq, FirstWorker: first, Bins: bins}
	for r := 0; r < workers; r++ {
		row := LoadDeltaRow{Recs: make([]uint64, bins), Nanos: make([]uint64, bins)}
		for b := 0; b < bins; b++ {
			h := Mix64(uint64(proc)<<40 ^ uint64(r)<<20 ^ uint64(b) ^ seq)
			if density > 0 && h%uint64(density) == 0 {
				row.Recs[b] = h >> 32
				row.Nanos[b] = h & 0xffffffff
			}
		}
		d.Rows = append(d.Rows, row)
	}
	return d
}

func deltasEqual(a, b *LoadDelta) error {
	if a.Proc != b.Proc || a.Seq != b.Seq || a.FirstWorker != b.FirstWorker || a.Bins != b.Bins {
		return fmt.Errorf("header mismatch: %+v vs %+v", a, b)
	}
	if len(a.Rows) != len(b.Rows) {
		return fmt.Errorf("row count %d vs %d", len(a.Rows), len(b.Rows))
	}
	for r := range a.Rows {
		for b_ := 0; b_ < a.Bins; b_++ {
			if a.Rows[r].Recs[b_] != b.Rows[r].Recs[b_] {
				return fmt.Errorf("row %d bin %d recs %d vs %d", r, b_, a.Rows[r].Recs[b_], b.Rows[r].Recs[b_])
			}
			if a.Rows[r].Nanos[b_] != b.Rows[r].Nanos[b_] {
				return fmt.Errorf("row %d bin %d nanos %d vs %d", r, b_, a.Rows[r].Nanos[b_], b.Rows[r].Nanos[b_])
			}
		}
	}
	return nil
}

func TestLoadDeltaRoundTrip(t *testing.T) {
	cases := []struct {
		name  string
		delta *LoadDelta
	}{
		{"empty heartbeat", makeDelta(2, 4, 2, 16, 7, 0)},
		{"single cell", &LoadDelta{Proc: 1, Seq: 1, FirstWorker: 3, Bins: 4,
			Rows: []LoadDeltaRow{{Recs: []uint64{0, 0, 9, 0}, Nanos: []uint64{0, 0, 1234, 0}}}}},
		{"dense", makeDelta(0, 0, 4, 32, 3, 1)},
		{"sparse", makeDelta(5, 10, 2, 256, 99, 17)},
		{"huge counters", &LoadDelta{Proc: 0, Seq: ^uint64(0), FirstWorker: 0, Bins: 2,
			Rows: []LoadDeltaRow{{Recs: []uint64{^uint64(0), 0}, Nanos: []uint64{0, ^uint64(0)}}}}},
		{"huge snapshot", makeDelta(1, 0, 8, 4096, 12, 3)},
		{"zero rows", &LoadDelta{Proc: 3, Seq: 5, FirstWorker: 6, Bins: 8}},
	}
	var got LoadDelta // reused across cases to exercise slice reuse
	for _, tc := range cases {
		buf := AppendLoadDelta(nil, tc.delta)
		if err := DecodeLoadDelta(buf, &got); err != nil {
			t.Fatalf("%s: decode: %v", tc.name, err)
		}
		if err := deltasEqual(tc.delta, &got); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
	}
}

func TestLoadDeltaTornReads(t *testing.T) {
	// Any proper prefix of a valid encoding must error, never panic. (The
	// transport never tears a frame, but the codec stands on its own.)
	full := AppendLoadDelta(nil, makeDelta(1, 2, 3, 64, 42, 5))
	var d LoadDelta
	for cut := 0; cut < len(full); cut++ {
		if err := DecodeLoadDelta(full[:cut], &d); err == nil {
			t.Fatalf("truncation at %d of %d decoded cleanly", cut, len(full))
		}
	}
	if err := DecodeLoadDelta(full, &d); err != nil {
		t.Fatalf("full payload: %v", err)
	}
}

func TestLoadDeltaTrailingBytes(t *testing.T) {
	buf := AppendLoadDelta(nil, makeDelta(0, 0, 1, 8, 1, 2))
	buf = append(buf, 0xaa)
	var d LoadDelta
	if err := DecodeLoadDelta(buf, &d); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("expected trailing-bytes error, got %v", err)
	}
}

func TestLoadDeltaVersionSkew(t *testing.T) {
	buf := AppendLoadDelta(nil, makeDelta(0, 0, 1, 8, 1, 2))
	buf[0] = LoadWireVersion + 1
	var d LoadDelta
	if err := DecodeLoadDelta(buf, &d); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("expected version error, got %v", err)
	}
	buf[0] = 0
	if err := DecodeLoadDelta(buf, &d); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("expected version error for version 0, got %v", err)
	}
}

func TestLoadDeltaAbsurdGeometryRejected(t *testing.T) {
	// A tiny forged payload declaring an enormous matrix must be rejected
	// before the decoder sizes any allocation from it.
	forge := func(bins, rows uint64) []byte {
		buf := []byte{LoadWireVersion}
		buf = appendForgedHeader(buf, 0, 1, 0, bins, rows)
		return buf
	}
	var d LoadDelta
	if err := DecodeLoadDelta(forge(1<<30, 1), &d); err == nil {
		t.Fatal("expected bins-bound error")
	}
	if err := DecodeLoadDelta(forge(1<<16, 1<<16), &d); err == nil {
		t.Fatal("expected cells-bound error")
	}
	// Row count exceeding the bytes that could possibly encode the rows.
	if err := DecodeLoadDelta(forge(4, 1<<40), &d); err == nil {
		t.Fatal("expected row-count error")
	}
	// A cell naming a bin outside the declared range.
	buf := forge(4, 1)
	buf = appendUvarints(buf, 1 /* cells */, 9 /* bin >= bins */, 1, 1)
	if err := DecodeLoadDelta(buf, &d); err == nil || !strings.Contains(err.Error(), "bin") {
		t.Fatalf("expected out-of-range bin error, got %v", err)
	}
}

func appendForgedHeader(buf []byte, proc, seq, first, bins, rows uint64) []byte {
	return appendUvarints(buf, proc, seq, first, bins, rows)
}

func appendUvarints(buf []byte, xs ...uint64) []byte {
	for _, x := range xs {
		buf = binenc.AppendUvarint(buf, x)
	}
	return buf
}

func TestClusterLoadViewMerge(t *testing.T) {
	// 3 processes × 2 workers, 8 bins. This process is 1 (workers 2, 3).
	const bins, logBins = 8, 3
	meter := NewLoadMeter(6, logBins)
	view := NewClusterLoadView(meter, 2, 2)

	// Local traffic lands in the meter directly.
	meter.add(2, 1, 10, 1000)
	meter.add(3, 5, 20, 2000)

	// Remote deltas arrive in two increments from process 0 and one from 2.
	d0a := &LoadDelta{Proc: 0, Seq: 1, FirstWorker: 0, Bins: bins, Rows: []LoadDeltaRow{
		{Recs: mkRow(bins, 0, 5), Nanos: mkRow(bins, 0, 500)},
		{Recs: mkRow(bins, 3, 7), Nanos: mkRow(bins, 3, 700)},
	}}
	d0b := &LoadDelta{Proc: 0, Seq: 2, FirstWorker: 0, Bins: bins, Rows: []LoadDeltaRow{
		{Recs: mkRow(bins, 0, 5), Nanos: mkRow(bins, 0, 500)},
		{Recs: make([]uint64, bins), Nanos: make([]uint64, bins)},
	}}
	d2 := &LoadDelta{Proc: 2, Seq: 1, FirstWorker: 4, Bins: bins, Rows: []LoadDeltaRow{
		{Recs: mkRow(bins, 7, 100), Nanos: mkRow(bins, 7, 9000)},
		{Recs: make([]uint64, bins), Nanos: make([]uint64, bins)},
	}}
	for _, d := range []*LoadDelta{d0a, d0b, d2} {
		if err := view.Apply(d); err != nil {
			t.Fatalf("apply: %v", err)
		}
	}

	s := view.Snapshot(nil)
	wantWorkerRecs := []uint64{10, 7, 10, 20, 100, 0}
	for w, want := range wantWorkerRecs {
		if s.WorkerRecs[w] != want {
			t.Fatalf("worker %d recs = %d, want %d (all: %v)", w, s.WorkerRecs[w], want, s.WorkerRecs)
		}
	}
	if s.BinRecs[0] != 10 || s.BinRecs[1] != 10 || s.BinRecs[3] != 7 || s.BinRecs[5] != 20 || s.BinRecs[7] != 100 {
		t.Fatalf("bin recs: %v", s.BinRecs)
	}
	if s.TotalNanos() != 1000+2000+500+700+500+9000 {
		t.Fatalf("total nanos = %d", s.TotalNanos())
	}

	// A delta covering our own rows must be ignored (the meter is
	// authoritative for local workers), not double-counted.
	dSelf := &LoadDelta{Proc: 1, Seq: 1, FirstWorker: 2, Bins: bins, Rows: []LoadDeltaRow{
		{Recs: mkRow(bins, 1, 999), Nanos: mkRow(bins, 1, 999)},
		{Recs: make([]uint64, bins), Nanos: make([]uint64, bins)},
	}}
	if err := view.Apply(dSelf); err != nil {
		t.Fatalf("apply self: %v", err)
	}
	s = view.Snapshot(s)
	if s.WorkerRecs[2] != 10 {
		t.Fatalf("self delta double-counted: worker 2 recs = %d", s.WorkerRecs[2])
	}

	// Geometry mismatches are rejected.
	if err := view.Apply(&LoadDelta{Proc: 0, Bins: 4}); err == nil {
		t.Fatal("expected bins mismatch error")
	}
	if err := view.Apply(&LoadDelta{Proc: 0, Bins: bins, FirstWorker: 5,
		Rows: make([]LoadDeltaRow, 2)}); err == nil {
		t.Fatal("expected out-of-range rows error")
	}
}

func mkRow(bins, hot int, v uint64) []uint64 {
	r := make([]uint64, bins)
	r[hot] = v
	return r
}

func TestLoadMeterReadRow(t *testing.T) {
	meter := NewLoadMeter(2, 2)
	meter.add(1, 3, 7, 70)
	recs := make([]uint64, meter.Bins())
	nanos := make([]uint64, meter.Bins())
	meter.ReadRow(1, recs, nanos)
	if recs[3] != 7 || nanos[3] != 70 || recs[0] != 0 {
		t.Fatalf("ReadRow: recs=%v nanos=%v", recs, nanos)
	}
}

func FuzzLoadDeltaDecode(f *testing.F) {
	f.Add(AppendLoadDelta(nil, makeDelta(1, 2, 3, 64, 42, 5)))
	f.Add(AppendLoadDelta(nil, makeDelta(0, 0, 1, 8, 1, 0)))
	f.Add([]byte{LoadWireVersion, 0xff, 0xff, 0xff})
	f.Add([]byte{LoadWireVersion + 3, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		var d LoadDelta
		if err := DecodeLoadDelta(data, &d); err != nil {
			return // any error is fine; panics and unbounded allocations are not
		}
		// A payload that decodes must re-encode to a payload that decodes to
		// the same delta (canonical forms may differ: non-sparse zero cells).
		var e LoadDelta
		if err := DecodeLoadDelta(AppendLoadDelta(nil, &d), &e); err != nil {
			t.Fatalf("re-encode of valid delta failed to decode: %v", err)
		}
		if err := deltasEqual(&d, &e); err != nil {
			t.Fatalf("re-encode round trip: %v", err)
		}
	})
}

func FuzzLoadDeltaRoundTrip(f *testing.F) {
	f.Add(2, 4, 3, uint64(9), 5)
	f.Fuzz(func(t *testing.T, proc, first, logW int, seq uint64, density int) {
		if proc < 0 || first < 0 || logW < 0 || logW > 3 {
			return
		}
		d := makeDelta(proc&0xff, first&0xff, 1<<logW, 32, seq, density)
		var got LoadDelta
		if err := DecodeLoadDelta(AppendLoadDelta(nil, d), &got); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if err := deltasEqual(d, &got); err != nil {
			t.Fatal(err)
		}
	})
}
