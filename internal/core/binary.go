package core

import (
	"fmt"

	"megaphone/internal/binenc"
)

// This file gives the generic container types of the package — MapState and
// Either — implementations of the BinaryState/BinaryRec contracts, so that
// operators built from them (StateMachine word counts, Binary joins) ride
// the TransferBinary fast path without per-workload code. Support depends
// on the type parameters: scalar keys/values are encoded inline, struct
// values delegate to their own BinaryRec implementation, and anything else
// reports incapable via BinaryCapable, which makes the codec fall back to
// gob for that bin.

// scalarCapable reports whether v's dynamic type has an inline encoding.
func scalarCapable(v any) bool {
	switch v.(type) {
	case uint64, int64, int, uint32, int32, uint, string, bool, Time, [2]uint64:
		return true
	}
	return false
}

// appendScalar appends the inline encoding of a supported scalar. It must
// only be called for types scalarCapable accepts.
func appendScalar(buf []byte, v any) []byte {
	switch x := v.(type) {
	case uint64:
		return binenc.AppendUvarint(buf, x)
	case int64:
		return binenc.AppendVarint(buf, x)
	case int:
		return binenc.AppendVarint(buf, int64(x))
	case uint32:
		return binenc.AppendUvarint(buf, uint64(x))
	case int32:
		return binenc.AppendVarint(buf, int64(x))
	case uint:
		return binenc.AppendUvarint(buf, uint64(x))
	case string:
		return binenc.AppendString(buf, x)
	case bool:
		return binenc.AppendBool(buf, x)
	case Time:
		return binenc.AppendUvarint(buf, uint64(x))
	case [2]uint64:
		buf = binenc.AppendU64(buf, x[0])
		return binenc.AppendU64(buf, x[1])
	}
	panic(fmt.Sprintf("megaphone: appendScalar on unsupported type %T", v))
}

// decodeScalar fills *ptr from the front of data for a supported scalar.
func decodeScalar(ptr any, data []byte) ([]byte, error) {
	switch p := ptr.(type) {
	case *uint64:
		x, rest, err := binenc.Uvarint(data)
		*p = x
		return rest, err
	case *int64:
		x, rest, err := binenc.Varint(data)
		*p = x
		return rest, err
	case *int:
		x, rest, err := binenc.Varint(data)
		*p = int(x)
		return rest, err
	case *uint32:
		x, rest, err := binenc.Uvarint(data)
		*p = uint32(x)
		return rest, err
	case *int32:
		x, rest, err := binenc.Varint(data)
		*p = int32(x)
		return rest, err
	case *uint:
		x, rest, err := binenc.Uvarint(data)
		*p = uint(x)
		return rest, err
	case *string:
		x, rest, err := binenc.String(data)
		*p = x
		return rest, err
	case *bool:
		x, rest, err := binenc.Bool(data)
		*p = x
		return rest, err
	case *Time:
		x, rest, err := binenc.Uvarint(data)
		*p = Time(x)
		return rest, err
	case *[2]uint64:
		x0, rest, err := binenc.U64(data)
		if err != nil {
			return nil, err
		}
		x1, rest, err := binenc.U64(rest)
		p[0], p[1] = x0, x1
		return rest, err
	}
	return nil, fmt.Errorf("megaphone: decodeScalar on unsupported type %T", ptr)
}

// valueCapable reports whether *ptr (pointing at a map value) can encode:
// either a supported scalar or a capable BinaryRec.
func valueCapable(ptr any, v any) bool {
	if scalarCapable(v) {
		return true
	}
	br, ok := ptr.(BinaryRec)
	return ok && capable(br)
}

// appendValue appends a map value: scalar inline, BinaryRec by delegation.
func appendValue(buf []byte, ptr any, v any) []byte {
	if scalarCapable(v) {
		return appendScalar(buf, v)
	}
	return ptr.(BinaryRec).AppendBinaryRec(buf)
}

// decodeValue fills *ptr from the front of data.
func decodeValue(ptr any, data []byte) ([]byte, error) {
	if scalarOf(ptr) {
		return decodeScalar(ptr, data)
	}
	if br, ok := ptr.(BinaryRec); ok {
		return br.DecodeBinaryRec(data)
	}
	return nil, fmt.Errorf("megaphone: decodeValue on unsupported type %T", ptr)
}

// scalarOf reports whether ptr points at a supported scalar type.
func scalarOf(ptr any) bool {
	switch ptr.(type) {
	case *uint64, *int64, *int, *uint32, *int32, *uint, *string, *bool, *Time, *[2]uint64:
		return true
	}
	return false
}

// --- MapState ---

// BinaryCapable reports whether this MapState instantiation can use the
// binary codec: scalar keys and scalar-or-BinaryRec values.
func (m *MapState[K, W]) BinaryCapable() bool {
	var k K
	if !scalarCapable(k) {
		return false
	}
	var w W
	return valueCapable(&w, w)
}

// AppendBinaryState implements BinaryState for scalar-keyed maps. The
// common instantiations are encoded through concrete-typed loops; other
// capable instantiations go through the generic per-entry path, which
// boxes each key and value.
func (m *MapState[K, W]) AppendBinaryState(buf []byte) []byte {
	buf = binenc.AppendUvarint(buf, uint64(len(m.M)))
	switch mm := any(m.M).(type) {
	case map[uint64]uint64:
		for k, v := range mm {
			buf = binenc.AppendUvarint(buf, k)
			buf = binenc.AppendUvarint(buf, v)
		}
	case map[uint64]int64:
		for k, v := range mm {
			buf = binenc.AppendUvarint(buf, k)
			buf = binenc.AppendVarint(buf, v)
		}
	case map[uint64][2]uint64:
		for k, v := range mm {
			buf = binenc.AppendUvarint(buf, k)
			buf = binenc.AppendU64(buf, v[0])
			buf = binenc.AppendU64(buf, v[1])
		}
	default:
		for k, w := range m.M {
			buf = appendScalar(buf, k)
			buf = appendValue(buf, &w, w)
		}
	}
	return buf
}

// DecodeBinaryState implements BinaryState.
func (m *MapState[K, W]) DecodeBinaryState(data []byte) ([]byte, error) {
	n, data, err := binenc.Count(data, 2) // every entry is >= 2 bytes
	if err != nil {
		return nil, err
	}
	m.M = make(map[K]W, n)
	switch mm := any(m.M).(type) {
	case map[uint64]uint64:
		for i := uint64(0); i < n; i++ {
			var k, v uint64
			if k, data, err = binenc.Uvarint(data); err != nil {
				return nil, err
			}
			if v, data, err = binenc.Uvarint(data); err != nil {
				return nil, err
			}
			mm[k] = v
		}
	case map[uint64]int64:
		for i := uint64(0); i < n; i++ {
			var k uint64
			var v int64
			if k, data, err = binenc.Uvarint(data); err != nil {
				return nil, err
			}
			if v, data, err = binenc.Varint(data); err != nil {
				return nil, err
			}
			mm[k] = v
		}
	case map[uint64][2]uint64:
		for i := uint64(0); i < n; i++ {
			var k uint64
			var v [2]uint64
			if k, data, err = binenc.Uvarint(data); err != nil {
				return nil, err
			}
			if v[0], data, err = binenc.U64(data); err != nil {
				return nil, err
			}
			if v[1], data, err = binenc.U64(data); err != nil {
				return nil, err
			}
			mm[k] = v
		}
	default:
		for i := uint64(0); i < n; i++ {
			var k K
			if data, err = decodeScalar(&k, data); err != nil {
				return nil, err
			}
			var w W
			if data, err = decodeValue(&w, data); err != nil {
				return nil, err
			}
			m.M[k] = w
		}
	}
	return data, nil
}

// --- Either ---

// BinaryCapable reports whether both sides of this Either instantiation
// implement BinaryRec.
func (e *Either[A, B]) BinaryCapable() bool {
	var a A
	ba, okA := any(&a).(BinaryRec)
	if !okA || !capable(ba) {
		return false
	}
	var b B
	bb, okB := any(&b).(BinaryRec)
	return okB && capable(bb)
}

// AppendBinaryRec implements BinaryRec by tagging the populated side and
// delegating to its BinaryRec implementation.
func (e *Either[A, B]) AppendBinaryRec(buf []byte) []byte {
	buf = binenc.AppendBool(buf, e.IsRight)
	if e.IsRight {
		return any(&e.Right).(BinaryRec).AppendBinaryRec(buf)
	}
	return any(&e.Left).(BinaryRec).AppendBinaryRec(buf)
}

// DecodeBinaryRec implements BinaryRec.
func (e *Either[A, B]) DecodeBinaryRec(data []byte) ([]byte, error) {
	isRight, data, err := binenc.Bool(data)
	if err != nil {
		return nil, err
	}
	e.IsRight = isRight
	if isRight {
		return any(&e.Right).(BinaryRec).DecodeBinaryRec(data)
	}
	return any(&e.Left).(BinaryRec).DecodeBinaryRec(data)
}
