package core

import (
	"fmt"
	"testing"
)

// benchCheckpointState builds a worker's worth of populated bins: 64 bins
// of 1k-entry maps (~1 MiB of binary payload), the shape a keycount worker
// drains per checkpoint.
func benchCheckpointState() (assignment []int, bins map[int]*BinState[KV[uint64, uint64], MapState[uint64, uint64]]) {
	const logBins = 6
	assignment = make([]int, 1<<logBins)
	bins = make(map[int]*BinState[KV[uint64, uint64], MapState[uint64, uint64]])
	for b := range assignment {
		bins[b] = mkBin(uint64(b)*1e6, 1000)
	}
	return assignment, bins
}

// BenchmarkCheckpointWrite measures one worker draining its bins to disk —
// the synchronous cost a checkpoint command adds to the epoch it aligns
// with (the "checkpoint stall" of the recovery ablation).
func BenchmarkCheckpointWrite(b *testing.B) {
	assignment, bins := benchCheckpointState()
	dir := b.TempDir()
	var payload []byte
	var bytes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := NewCheckpointWriter(dir, "bench-op", Time(i+1), 0)
		if err != nil {
			b.Fatal(err)
		}
		for bin := 0; bin < len(assignment); bin++ {
			payload, err = TransferBinary.EncodeBin(bins[bin], payload[:0])
			if err != nil {
				b.Fatal(err)
			}
			if err := w.WriteBin(appendChunks(nil, bin, 0, payload, DefaultChunkBytes)); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Finish(1, 6, TransferBinary.Name(), assignment, nil); err != nil {
			b.Fatal(err)
		}
		bytes = w.Bytes()
	}
	b.SetBytes(bytes)
}

// BenchmarkCheckpointRestore measures loading and digest-verifying one
// worker's checkpoint — the disk half of recovery latency (the other half
// is replaying input since the checkpoint epoch).
func BenchmarkCheckpointRestore(b *testing.B) {
	assignment, bins := benchCheckpointState()
	dir := b.TempDir()
	w, err := NewCheckpointWriter(dir, "bench-op", 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	var payload []byte
	for bin := 0; bin < len(assignment); bin++ {
		payload, err = TransferBinary.EncodeBin(bins[bin], payload[:0])
		if err != nil {
			b.Fatal(err)
		}
		if err := w.WriteBin(appendChunks(nil, bin, 0, payload, DefaultChunkBytes)); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Finish(1, 6, TransferBinary.Name(), assignment, nil); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(w.Bytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := LoadRestore(dir, "bench-op", 1, 1, 0, 1, TransferBinary.Name())
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Bins) != len(assignment) {
			b.Fatal(fmt.Errorf("restored %d bins, want %d", len(r.Bins), len(assignment)))
		}
	}
}
