package core

import (
	"reflect"
	"sort"
	"sync"
	"testing"

	"megaphone/internal/dataflow"
)

// TestLoadCheckpointBinsSubset: LoadCheckpointBins returns exactly the
// requested bins, reading each from the worker file the checkpoint's own
// assignment names, and rejects out-of-range bins.
func TestLoadCheckpointBinsSubset(t *testing.T) {
	dir := t.TempDir()
	const peers, logBins = 2, 2
	assignment := []int{1, 0, 1, 1}
	bins := map[int]*BinState[KV[uint64, uint64], MapState[uint64, uint64]]{
		0: mkBin(1, 3),
		1: mkBin(2, 500),
		2: mkBin(3, 4),
	}
	for w := 0; w < peers; w++ {
		writeTestCheckpoint(t, dir, 5, w, peers, logBins, 64, assignment, bins)
	}

	// Bins 0 (worker 1), 1 (worker 0), 3 (worker 1, empty): spans both
	// worker files and includes an owned-but-empty bin.
	r, err := LoadCheckpointBins(dir, "test-op", 5, peers, []int{0, 1, 3}, TransferBinary.Name())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Assignment, assignment) || r.LogBins != logBins || r.Epoch != 5 {
		t.Fatalf("restore metadata mismatch: %+v", r)
	}
	for _, b := range []int{0, 1} {
		payload, ok := r.Bins[b]
		if !ok {
			t.Fatalf("bin %d missing", b)
		}
		got := &BinState[KV[uint64, uint64], MapState[uint64, uint64]]{State: &MapState[uint64, uint64]{}}
		if err := TransferBinary.DecodeBin(got, payload); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.State, bins[b].State) {
			t.Fatalf("bin %d state mismatch", b)
		}
	}
	if _, ok := r.Bins[2]; ok {
		t.Fatal("bin 2 was not requested but appeared in the result")
	}
	if _, ok := r.Bins[3]; ok {
		t.Fatal("bin 3 was empty at the checkpoint but appeared in the result")
	}

	if _, err := LoadCheckpointBins(dir, "test-op", 5, peers, []int{4}, TransferBinary.Name()); err == nil {
		t.Fatal("out-of-range bin not rejected")
	}
}

// TestClampPending: pending records scheduled before the clamp time move up
// to it, later ones are untouched, and heap order survives.
func TestClampPending(t *testing.T) {
	b := &BinState[KV[uint64, uint64], MapState[uint64, uint64]]{}
	if b.clampPending(10) {
		t.Fatal("empty bin reported a clamp")
	}
	b.PushPending(3, KV[uint64, uint64]{Key: 3})
	b.PushPending(9, KV[uint64, uint64]{Key: 9})
	b.PushPending(5, KV[uint64, uint64]{Key: 5})
	if b.clampPending(2) {
		t.Fatal("nothing is before 2, clamp reported a change")
	}
	if !b.clampPending(6) {
		t.Fatal("records at 3 and 5 are before 6, clamp reported no change")
	}
	var got []Time
	for len(b.Pending) > 0 {
		ht, _ := b.headPending()
		got = append(got, ht)
		b.Pending = b.Pending[1:]
		// re-heapify by rebuilding: popPendingAt would need exact times
		bb := &BinState[KV[uint64, uint64], MapState[uint64, uint64]]{Pending: b.Pending}
		bb.clampPending(0)
		b.Pending = bb.Pending
	}
	want := []Time{6, 6, 9}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("clamped times %v, want %v", got, want)
	}
}

// TestRestoreMoveRebuildsState pins the crash-leave state path end to end
// in one process: execution A checkpoints at epoch 5 and exits; execution B
// starts empty (modeling the cluster continuing after a member died with
// its bins), and at epoch 7 restore commands reassign the "dead" worker 1's
// bins to worker 0, rebuilt from A's checkpoint. Records fed after the
// restore must observe the checkpointed counts, and the rebuilt bins must
// arrive through the normal install path (OnInstall fires on the new
// owner).
func TestRestoreMoveRebuildsState(t *testing.T) {
	dir := t.TempDir()
	const workers, logBins = 2, 2

	// One key per bin, so per-key counts map 1:1 to per-bin state.
	keyOf := make(map[int]uint64) // bin -> key
	for k := uint64(0); len(keyOf) < 1<<logBins; k++ {
		b := BinOf(Mix64(k), logBins)
		if _, ok := keyOf[b]; !ok {
			keyOf[b] = k
		}
	}

	type KVr = KV[uint64, int64]
	run := func(restoreAt Time, feed func(data []*dataflow.InputHandle[KVr], ctl []*dataflow.InputHandle[Move]), onInstall func(t Time, bin, worker int)) map[uint64]int64 {
		var mu sync.Mutex
		finals := make(map[uint64]int64)
		handle := &Handle[KVr, MapState[uint64, int64], KVr]{OnInstall: onInstall}
		exec := dataflow.NewExecution(dataflow.Config{Workers: workers})
		var dataIns []*dataflow.InputHandle[KVr]
		var ctlIns []*dataflow.InputHandle[Move]
		exec.Build(func(w *dataflow.Worker) {
			ctl, ctlStream := dataflow.NewInput[Move](w, "control")
			ctlIns = append(ctlIns, ctl)
			in, data := dataflow.NewInput[KVr](w, "input")
			dataIns = append(dataIns, in)
			counts := StateMachine(w,
				Config{Name: "count", LogBins: logBins, Transfer: TransferBinary,
					Checkpoint: &CheckpointConfig{Dir: dir}},
				ctlStream, data,
				func(k uint64) uint64 { return Mix64(k) },
				func(k uint64, v int64, st *int64, emit func(KVr)) {
					*st += v
					emit(KVr{Key: k, Val: *st})
				},
				handle)
			sink := w.NewOp("sink", 0)
			dataflow.Connect(sink, counts, dataflow.Pipeline[KVr]{})
			sink.Build(func(c *dataflow.OpCtx) {
				dataflow.ForEachBatch(c, 0, func(_ Time, out []KVr) {
					mu.Lock()
					for _, kv := range out {
						if kv.Val > finals[kv.Key] {
							finals[kv.Key] = kv.Val
						}
					}
					mu.Unlock()
				})
			})
		})
		exec.Start()
		feed(dataIns, ctlIns)
		for _, h := range ctlIns {
			h.Close()
		}
		for _, h := range dataIns {
			h.Close()
		}
		exec.Wait()
		return finals
	}

	// Execution A: 3 units per key at epochs 1, 2, 3; checkpoint at 5.
	run(0, func(data []*dataflow.InputHandle[KVr], ctl []*dataflow.InputHandle[Move]) {
		for e := Time(1); e <= 3; e++ {
			for _, k := range keyOf {
				data[0].SendAt(e, KVr{Key: k, Val: 1})
			}
		}
		ctl[0].SendAt(5, CheckpointMove())
		for e := Time(0); e <= 6; e++ {
			for _, h := range ctl {
				h.AdvanceTo(e + 1)
			}
			for _, h := range data {
				h.AdvanceTo(e + 1)
			}
		}
	}, nil)

	// Execution B: restore worker 1's bins (round-robin: odd bins) onto
	// worker 0 at epoch 7, then add 2 units per restored key.
	var mu sync.Mutex
	installed := make(map[int]int) // bin -> installing worker
	var deadBins []int
	for b := 0; b < 1<<logBins; b++ {
		if InitialWorker(b, workers) == 1 {
			deadBins = append(deadBins, b)
		}
	}
	finals := run(7, func(data []*dataflow.InputHandle[KVr], ctl []*dataflow.InputHandle[Move]) {
		var moves []Move
		for _, b := range deadBins {
			moves = append(moves, RestoreMove(b, 0, 5))
		}
		ctl[0].SendAt(7, moves...)
		for e := Time(8); e <= 9; e++ {
			for _, b := range deadBins {
				data[0].SendAt(e, KVr{Key: keyOf[b], Val: 1})
			}
		}
		for e := Time(0); e <= 10; e++ {
			for _, h := range ctl {
				h.AdvanceTo(e + 1)
			}
			for _, h := range data {
				h.AdvanceTo(e + 1)
			}
		}
	}, func(_ Time, bin, worker int) {
		mu.Lock()
		installed[bin] = worker
		mu.Unlock()
	})

	for _, b := range deadBins {
		k := keyOf[b]
		if finals[k] != 5 {
			t.Errorf("bin %d key %d: count %d after restore, want 3 (checkpointed) + 2 (new)", b, k, finals[k])
		}
		if w, ok := installed[b]; !ok || w != 0 {
			t.Errorf("bin %d installed on worker %v, want 0 via the migration install path", b, installed[b])
		}
	}
	// Worker 0's own bins were never restored or fed in B.
	for b := 0; b < 1<<logBins; b++ {
		if InitialWorker(b, workers) == 0 {
			if v, ok := finals[keyOf[b]]; ok && v != 0 {
				t.Errorf("bin %d key %d: unexpected count %d in execution B", b, keyOf[b], v)
			}
		}
	}
}
