package core

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"megaphone/internal/binenc"
)

// Epoch-aligned checkpoint/restore: a checkpoint is a migration whose
// destination is disk. The CheckpointMove control command rides the same
// broadcast stream as migrations, becomes final when the control frontier
// passes its time T, and executes when the output frontier shows every
// update before T applied — at which point each worker's locally-owned bins
// are exactly the consistent cut at T, and the only state worth persisting.
// F serializes them with the operator's migration codec, splits them with
// the same chunking used for in-flight StateMsgs, and writes the chunks plus
// a manifest (epoch, the bin→worker assignment in effect, the live roster,
// per-bin chunk digests) to CheckpointConfig.Dir. A restarting process loads
// the newest epoch whose every *live* worker's manifest is present (dead
// slots own no bins and write nothing), reinstalls its workers' bins through
// the same install path a migration uses, and resumes input at T.

// CheckpointConfig enables checkpointing on a megaphone operator
// (Config.Checkpoint). The directory is shared by every worker of the
// execution in local clusters and tests; each worker writes only its own
// files, so no coordination beyond the filesystem is needed.
type CheckpointConfig struct {
	// Dir is the checkpoint root; the operator writes under Dir/<op-name>/.
	Dir string
	// OnCheckpoint, when non-nil, observes every completed per-worker
	// checkpoint write (instrumentation; called on worker goroutines).
	OnCheckpoint func(epoch Time, worker, bins int, bytes int64, elapsed time.Duration)
	// OnError, when non-nil, observes a failed checkpoint write. Write
	// failures are non-fatal by design: the worker's manifest is simply
	// never committed, which invalidates the epoch for recovery (the
	// previous complete epoch remains usable) while the run itself keeps
	// streaming — a full disk must not turn into the process death
	// checkpoints exist to survive. nil logs to stderr.
	OnError func(epoch Time, worker int, err error)
	// LiveAt, when non-nil, names the global worker indices live at a
	// checkpoint epoch (sorted ascending). Manifests record it, making a
	// checkpoint taken on a shrunk roster complete — and restorable — once
	// every *live* worker's manifest exists: dead slots own no bins at the
	// epoch, so their absent manifests certify nothing. nil means the full
	// roster is always live (the static-membership default).
	LiveAt func(epoch Time) []int
}

// liveWorkers resolves the live roster recorded at a checkpoint epoch; nil
// means the full roster.
func (c *CheckpointConfig) liveWorkers(epoch Time) []int {
	if c.LiveAt == nil {
		return nil
	}
	return c.LiveAt(epoch)
}

// reportError routes a non-fatal checkpoint failure.
func (c *CheckpointConfig) reportError(epoch Time, worker int, err error) {
	if c.OnError != nil {
		c.OnError(epoch, worker, err)
		return
	}
	fmt.Fprintf(os.Stderr, "megaphone: checkpoint at epoch %d on worker %d failed (epoch not committed): %v\n", epoch, worker, err)
}

// Restore carries a loaded checkpoint into Operator via Config.Restore: the
// bin→worker assignment in effect at the checkpoint epoch and the
// serialized payloads of the bins owned by this process's workers. Build it
// with LoadRestore.
type Restore struct {
	// Epoch is the checkpoint's logical time; drivers resume input there.
	Epoch Time
	// LogBins must match the operator's Config.LogBins.
	LogBins int
	// Assignment maps every bin to its owning worker at Epoch.
	Assignment []int
	// Bins maps locally-owned bins to their codec payloads.
	Bins map[int][]byte
}

// Manifest is the per-worker commit record of one checkpoint epoch: it is
// written (atomically, via rename) only after every bin chunk reached disk,
// so its presence certifies the data file, and an epoch is complete exactly
// when all *live* workers' manifests exist — Live records the roster at the
// epoch (nil means the full roster [0, Peers)), so a checkpoint taken after
// a crash-leave is complete without the dead slot's manifest.
type Manifest struct {
	Op         string        `json:"op"`
	Epoch      uint64        `json:"epoch"`
	Worker     int           `json:"worker"`
	Peers      int           `json:"peers"`
	Live       []int         `json:"live,omitempty"`
	LogBins    int           `json:"log_bins"`
	Codec      string        `json:"codec"`
	Assignment []int         `json:"assignment"`
	Bins       []BinManifest `json:"bins"`
	Bytes      int64         `json:"bytes"`
}

// liveSet resolves the worker set this manifest certifies as live; a nil
// Live field means the full roster.
func (m *Manifest) liveSet(peers int) []int {
	if len(m.Live) > 0 {
		return m.Live
	}
	all := make([]int, peers)
	for i := range all {
		all[i] = i
	}
	return all
}

// BinManifest records one drained bin: its payload size and the FNV-64a
// digest of each chunk, in chunk order.
type BinManifest struct {
	Bin     int      `json:"bin"`
	Bytes   int64    `json:"bytes"`
	Digests []string `json:"chunk_digests"`
}

// checkpoint file layout under CheckpointConfig.Dir:
//
//	<dir>/<op>/epoch-<E>/bins-w<idx>.dat      chunk stream (see chunk record below)
//	<dir>/<op>/epoch-<E>/manifest-w<idx>.json commit record, written last
//
// A chunk record is: uvarint bin, uvarint seq, bool last, uvarint len,
// payload bytes, 8-byte big-endian FNV-64a digest of the payload.
const (
	ckptMagic       = "MPCK1\n"
	ckptEpochPrefix = "epoch-"
)

func ckptEpochDir(dir, op string, epoch Time) string {
	return filepath.Join(dir, op, ckptEpochPrefix+strconv.FormatUint(uint64(epoch), 10))
}

func ckptManifestPath(dir, op string, epoch Time, worker int) string {
	return filepath.Join(ckptEpochDir(dir, op, epoch), fmt.Sprintf("manifest-w%d.json", worker))
}

func ckptBinsPath(dir, op string, epoch Time, worker int) string {
	return filepath.Join(ckptEpochDir(dir, op, epoch), fmt.Sprintf("bins-w%d.dat", worker))
}

func chunkDigest(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// CheckpointWriter streams one worker's bins into a checkpoint epoch
// directory. WriteBin consumes the chunked StateMsgs of one bin (the same
// messages a migration would put in flight); Finish writes the manifest,
// committing the checkpoint for this worker.
type CheckpointWriter struct {
	dir, op string
	epoch   Time
	worker  int
	f       *os.File
	scratch []byte
	bins    []BinManifest
	bytes   int64
}

// NewCheckpointWriter creates the epoch directory and opens this worker's
// data file.
func NewCheckpointWriter(dir, op string, epoch Time, worker int) (*CheckpointWriter, error) {
	ed := ckptEpochDir(dir, op, epoch)
	if err := os.MkdirAll(ed, 0o777); err != nil {
		return nil, fmt.Errorf("megaphone: creating checkpoint dir: %w", err)
	}
	f, err := os.Create(ckptBinsPath(dir, op, epoch, worker))
	if err != nil {
		return nil, fmt.Errorf("megaphone: creating checkpoint data file: %w", err)
	}
	w := &CheckpointWriter{dir: dir, op: op, epoch: epoch, worker: worker, f: f}
	if _, err := f.WriteString(ckptMagic); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// WriteBin appends one bin's chunk stream to the data file and records its
// digests. The chunks must belong to a single bin, in Seq order.
func (w *CheckpointWriter) WriteBin(chunks []StateMsg) error {
	if len(chunks) == 0 {
		return nil
	}
	bm := BinManifest{Bin: chunks[0].Bin}
	for _, m := range chunks {
		if m.Dir != nil {
			return fmt.Errorf("megaphone: direct-transfer bins cannot be checkpointed; use a serializing codec")
		}
		buf := w.scratch[:0]
		buf = binenc.AppendUvarint(buf, uint64(m.Bin))
		buf = binenc.AppendUvarint(buf, uint64(m.Seq))
		buf = binenc.AppendBool(buf, m.Last)
		buf = binenc.AppendUvarint(buf, uint64(len(m.Bytes)))
		buf = append(buf, m.Bytes...)
		d := chunkDigest(m.Bytes)
		buf = binary.BigEndian.AppendUint64(buf, d)
		w.scratch = buf
		if _, err := w.f.Write(buf); err != nil {
			return fmt.Errorf("megaphone: writing checkpoint chunk: %w", err)
		}
		bm.Bytes += int64(len(m.Bytes))
		bm.Digests = append(bm.Digests, strconv.FormatUint(d, 16))
	}
	w.bytes += bm.Bytes
	w.bins = append(w.bins, bm)
	return nil
}

// Bins returns the number of bins written so far.
func (w *CheckpointWriter) Bins() int { return len(w.bins) }

// Bytes returns the payload bytes written so far.
func (w *CheckpointWriter) Bytes() int64 { return w.bytes }

// Finish fsyncs the data file and commits the manifest via atomic rename.
// live names the global worker indices live at the checkpoint epoch (nil =
// full roster); every writer of one epoch must record the same set.
func (w *CheckpointWriter) Finish(peers, logBins int, codec string, assignment, live []int) error {
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	m := Manifest{
		Op:         w.op,
		Epoch:      uint64(w.epoch),
		Worker:     w.worker,
		Peers:      peers,
		Live:       live,
		LogBins:    logBins,
		Codec:      codec,
		Assignment: assignment,
		Bins:       w.bins,
		Bytes:      w.bytes,
	}
	data, err := json.MarshalIndent(&m, "", " ")
	if err != nil {
		return err
	}
	path := ckptManifestPath(w.dir, w.op, w.epoch, w.worker)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o666); err != nil {
		return fmt.Errorf("megaphone: writing checkpoint manifest: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("megaphone: committing checkpoint manifest: %w", err)
	}
	return nil
}

// Abort closes the data file without committing (a partial data file with
// no manifest is ignored by recovery).
func (w *CheckpointWriter) Abort() { w.f.Close() }

// LatestCheckpoint scans dir for the newest epoch at which every operator
// subdirectory holds a manifest for every worker the epoch's manifests name
// as live (the full roster [0, peers) when no live set was recorded). It
// returns the epoch and the operator names found; ok is false when no
// complete epoch exists (including when dir is empty or absent).
func LatestCheckpoint(dir string, peers int) (epoch Time, ops []string, ok bool, err error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return 0, nil, false, nil
	}
	if err != nil {
		return 0, nil, false, fmt.Errorf("megaphone: reading checkpoint dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			ops = append(ops, e.Name())
		}
	}
	if len(ops) == 0 {
		return 0, nil, false, nil
	}
	sort.Strings(ops)

	// Candidate epochs: those listed under the first operator; an epoch is
	// complete when every op has every worker's manifest for it.
	var epochs []Time
	sub, err := os.ReadDir(filepath.Join(dir, ops[0]))
	if err != nil {
		return 0, nil, false, err
	}
	for _, e := range sub {
		name := e.Name()
		if !e.IsDir() || !strings.HasPrefix(name, ckptEpochPrefix) {
			continue
		}
		v, perr := strconv.ParseUint(name[len(ckptEpochPrefix):], 10, 64)
		if perr != nil {
			continue
		}
		epochs = append(epochs, Time(v))
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] > epochs[j] })

	for _, ep := range epochs {
		complete := true
		for _, op := range ops {
			// Any present manifest names the roster live at the epoch; the
			// epoch is complete for this op when every live worker committed.
			// A dead slot's manifest is never written post-crash, and never
			// required: its bins belong to survivors at the epoch.
			m := anyManifest(dir, op, ep, peers)
			if m == nil || m.Peers != peers {
				complete = false
				break
			}
			for _, w := range m.liveSet(peers) {
				if _, serr := os.Stat(ckptManifestPath(dir, op, ep, w)); serr != nil {
					complete = false
					break
				}
			}
			if !complete {
				break
			}
		}
		if complete {
			return ep, ops, true, nil
		}
	}
	return 0, ops, false, nil
}

// anyManifest reads the first present, well-formed manifest of one
// operator's checkpoint epoch, scanning worker slots in index order. nil
// when none is readable.
func anyManifest(dir, op string, epoch Time, peers int) *Manifest {
	for w := 0; w < peers; w++ {
		data, err := os.ReadFile(ckptManifestPath(dir, op, epoch, w))
		if err != nil {
			continue
		}
		var m Manifest
		if json.Unmarshal(data, &m) == nil {
			return &m
		}
	}
	return nil
}

// LoadRestore reads one operator's checkpoint at epoch for the workers in
// [first, first+n): it verifies every manifest (peer count, codec,
// assignment agreement) and every chunk digest, reassembles chunked bins
// with the same assembler the migration receive path uses, and returns the
// Restore to hand to Config.Restore. codec must name the codec the
// recovering run will decode with. Workers outside the checkpoint's
// recorded live roster wrote no manifest and own no bins; their absence is
// tolerated, so a shrunk-roster checkpoint maps onto the full worker space.
func LoadRestore(dir, op string, epoch Time, peers, first, n int, codec string) (*Restore, error) {
	r := &Restore{Epoch: epoch, Bins: make(map[int][]byte)}
	var live []int // live roster per the first manifest read
	var missing []int
	for w := first; w < first+n; w++ {
		data, err := os.ReadFile(ckptManifestPath(dir, op, epoch, w))
		if os.IsNotExist(err) {
			// Possibly a slot that was dead at the checkpoint epoch; judged
			// against the recorded live roster once a manifest is in hand.
			missing = append(missing, w)
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("megaphone: checkpoint manifest for worker %d: %w", w, err)
		}
		var m Manifest
		if err := json.Unmarshal(data, &m); err != nil {
			return nil, fmt.Errorf("megaphone: checkpoint manifest for worker %d: %w", w, err)
		}
		if m.Op != op || m.Epoch != uint64(epoch) || m.Worker != w {
			return nil, fmt.Errorf("megaphone: checkpoint manifest identity mismatch (op %q epoch %d worker %d)", m.Op, m.Epoch, m.Worker)
		}
		if m.Peers != peers {
			return nil, fmt.Errorf("megaphone: checkpoint was taken with %d workers, recovering with %d: worker counts must match", m.Peers, peers)
		}
		if m.Codec != codec {
			return nil, fmt.Errorf("megaphone: checkpoint was encoded with codec %q, recovering with %q: pass the same -transfer", m.Codec, codec)
		}
		if r.Assignment == nil {
			r.LogBins = m.LogBins
			r.Assignment = m.Assignment
			live = m.liveSet(peers)
		} else if m.LogBins != r.LogBins || !equalInts(m.Assignment, r.Assignment) {
			return nil, fmt.Errorf("megaphone: checkpoint manifests disagree on the bin assignment (worker %d)", w)
		}
		if len(m.Assignment) != 1<<uint(m.LogBins) {
			return nil, fmt.Errorf("megaphone: checkpoint manifest assignment has %d bins, log_bins says %d", len(m.Assignment), 1<<uint(m.LogBins))
		}
		if err := loadBins(dir, op, epoch, w, &m, r); err != nil {
			return nil, err
		}
	}
	if len(missing) > 0 {
		if r.Assignment == nil {
			// Every requested worker's manifest is absent: consult any other
			// worker's to learn the roster and assignment (a joiner reviving
			// a slot that was dead at the epoch lands here).
			m := anyManifest(dir, op, epoch, peers)
			if m == nil {
				return nil, fmt.Errorf("megaphone: checkpoint manifest for worker %d: no manifest present at epoch %d", missing[0], epoch)
			}
			if m.Peers != peers {
				return nil, fmt.Errorf("megaphone: checkpoint was taken with %d workers, recovering with %d: worker counts must match", m.Peers, peers)
			}
			if m.Codec != codec {
				return nil, fmt.Errorf("megaphone: checkpoint was encoded with codec %q, recovering with %q: pass the same -transfer", m.Codec, codec)
			}
			r.LogBins = m.LogBins
			r.Assignment = m.Assignment
			live = m.liveSet(peers)
		}
		for _, w := range missing {
			if containsInt(live, w) {
				return nil, fmt.Errorf("megaphone: checkpoint manifest for worker %d missing but the epoch records it live (incomplete checkpoint)", w)
			}
			for b, owner := range r.Assignment {
				if owner == w {
					return nil, fmt.Errorf("megaphone: checkpoint assigns bin %d to worker %d, which wrote no manifest (incomplete checkpoint)", b, w)
				}
			}
		}
	}
	return r, nil
}

// loadBins reads one worker's data file, verifying chunk digests against
// both the in-file digests and the manifest, and reassembles payloads.
func loadBins(dir, op string, epoch Time, worker int, m *Manifest, r *Restore) error {
	want := make(map[int]*BinManifest, len(m.Bins))
	for i := range m.Bins {
		bm := &m.Bins[i]
		if bm.Bin < 0 || bm.Bin >= len(m.Assignment) {
			return fmt.Errorf("megaphone: checkpoint manifest lists bin %d out of range", bm.Bin)
		}
		if m.Assignment[bm.Bin] != worker {
			return fmt.Errorf("megaphone: checkpoint manifest for worker %d lists bin %d owned by worker %d", worker, bm.Bin, m.Assignment[bm.Bin])
		}
		want[bm.Bin] = bm
	}
	data, err := os.ReadFile(ckptBinsPath(dir, op, epoch, worker))
	if err != nil {
		return fmt.Errorf("megaphone: checkpoint data for worker %d: %w", worker, err)
	}
	if len(data) < len(ckptMagic) || string(data[:len(ckptMagic)]) != ckptMagic {
		return fmt.Errorf("megaphone: checkpoint data for worker %d: bad magic", worker)
	}
	data = data[len(ckptMagic):]

	var asm chunkAssembler
	seen := make(map[int]int) // bin -> chunks consumed (index into digests)
	for len(data) > 0 {
		var msg StateMsg
		var v uint64
		if v, data, err = binenc.Uvarint(data); err != nil {
			return chunkErr(worker, err)
		}
		msg.Bin = int(v)
		if v, data, err = binenc.Uvarint(data); err != nil {
			return chunkErr(worker, err)
		}
		msg.Seq = int(v)
		if msg.Last, data, err = binenc.Bool(data); err != nil {
			return chunkErr(worker, err)
		}
		if v, data, err = binenc.Uvarint(data); err != nil {
			return chunkErr(worker, err)
		}
		if uint64(len(data)) < v+8 {
			return chunkErr(worker, io.ErrUnexpectedEOF)
		}
		msg.Bytes = data[:v]
		data = data[v:]
		fileDigest := binary.BigEndian.Uint64(data[:8])
		data = data[8:]

		bm := want[msg.Bin]
		if bm == nil {
			return fmt.Errorf("megaphone: checkpoint data for worker %d holds bin %d absent from its manifest", worker, msg.Bin)
		}
		idx := seen[msg.Bin]
		if idx >= len(bm.Digests) {
			return fmt.Errorf("megaphone: checkpoint bin %d has more chunks than its manifest records", msg.Bin)
		}
		d := chunkDigest(msg.Bytes)
		if d != fileDigest || strconv.FormatUint(d, 16) != bm.Digests[idx] {
			return fmt.Errorf("megaphone: checkpoint bin %d chunk %d digest mismatch (corrupt checkpoint)", msg.Bin, idx)
		}
		seen[msg.Bin] = idx + 1
		// The assembler copies nothing for single-chunk bins, so detach the
		// payload from the file buffer explicitly.
		if payload, done := asm.add(msg); done {
			r.Bins[msg.Bin] = append([]byte(nil), payload...)
		}
	}
	for bin, bm := range want {
		if seen[bin] != len(bm.Digests) {
			return fmt.Errorf("megaphone: checkpoint bin %d truncated: %d of %d chunks present", bin, seen[bin], len(bm.Digests))
		}
	}
	return nil
}

// LoadCheckpointBins reads the payloads of a specific set of bins from one
// operator's checkpoint at epoch, wherever they were written: the
// checkpoint's own assignment — not the assignment in effect now — names
// the worker whose file holds each bin, because bins may have migrated
// since. Crash-leave restore uses it to rebuild a dead member's bins on
// their new owners without loading the whole checkpoint. Bins that were
// owned but empty at the checkpoint are absent from the result (recovery
// recreates them lazily), exactly as with LoadRestore.
func LoadCheckpointBins(dir, op string, epoch Time, peers int, bins []int, codec string) (*Restore, error) {
	// Any present manifest carries the checkpoint's assignment; worker 0
	// itself may have been dead at the epoch and written none.
	m0 := anyManifest(dir, op, epoch, peers)
	if m0 == nil {
		return nil, fmt.Errorf("megaphone: checkpoint at epoch %d for %q: no manifest present", epoch, op)
	}
	out := &Restore{Epoch: epoch, LogBins: m0.LogBins, Assignment: m0.Assignment, Bins: make(map[int][]byte)}
	wanted := make(map[int]bool, len(bins))
	byOwner := make(map[int][]int)
	for _, b := range bins {
		if b < 0 || b >= len(m0.Assignment) {
			return nil, fmt.Errorf("megaphone: restore bin %d out of range for checkpoint with %d bins", b, len(m0.Assignment))
		}
		wanted[b] = true
		owner := m0.Assignment[b]
		byOwner[owner] = append(byOwner[owner], b)
	}
	for w := range byOwner {
		r, err := LoadRestore(dir, op, epoch, peers, w, 1, codec)
		if err != nil {
			return nil, err
		}
		if !equalInts(r.Assignment, out.Assignment) {
			return nil, fmt.Errorf("megaphone: checkpoint manifests disagree on the bin assignment (worker %d)", w)
		}
		for b, p := range r.Bins {
			if wanted[b] {
				out.Bins[b] = p
			}
		}
	}
	return out, nil
}

func chunkErr(worker int, err error) error {
	return fmt.Errorf("megaphone: checkpoint data for worker %d: corrupt chunk record: %w", worker, err)
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CodecName resolves the registry name of a (possibly nil) Config.Transfer
// value, for recording in checkpoint manifests.
func CodecName(c Codec) string {
	if c == nil {
		return TransferGob.Name()
	}
	return c.Name()
}
