package core

import "testing"

// TestLoadMeterSnapshot: adds land in the right cells, snapshots aggregate
// per bin and per worker, and snapshot buffers are reused.
func TestLoadMeterSnapshot(t *testing.T) {
	m := NewLoadMeter(2, 2) // 2 workers, 4 bins
	m.add(0, 0, 10, 100)
	m.add(0, 3, 5, 50)
	m.add(1, 3, 7, 70)

	s := m.Snapshot(nil)
	if s.Workers != 2 || s.Bins != 4 {
		t.Fatalf("snapshot dims = %d workers, %d bins", s.Workers, s.Bins)
	}
	if s.BinRecs[0] != 10 || s.BinRecs[3] != 12 || s.BinRecs[1] != 0 {
		t.Errorf("BinRecs = %v", s.BinRecs)
	}
	if s.BinNanos[3] != 120 {
		t.Errorf("BinNanos[3] = %d, want 120", s.BinNanos[3])
	}
	if s.WorkerRecs[0] != 15 || s.WorkerRecs[1] != 7 {
		t.Errorf("WorkerRecs = %v", s.WorkerRecs)
	}
	if s.WorkerNanos[0] != 150 || s.WorkerNanos[1] != 70 {
		t.Errorf("WorkerNanos = %v", s.WorkerNanos)
	}

	// Reuse: the same backing arrays must be refreshed, not accumulated.
	m.add(1, 1, 1, 1)
	prevBinRecs := &s.BinRecs[0]
	s = m.Snapshot(s)
	if &s.BinRecs[0] != prevBinRecs {
		t.Error("snapshot reallocated a reusable slice")
	}
	if s.BinRecs[0] != 10 || s.BinRecs[1] != 1 {
		t.Errorf("refreshed BinRecs = %v", s.BinRecs)
	}
}

// TestLoadSnapshotDelta: windows are cumulative differences; a nil previous
// snapshot yields the cumulative values.
func TestLoadSnapshotDelta(t *testing.T) {
	m := NewLoadMeter(2, 1)
	m.add(0, 0, 10, 100)
	first := m.Snapshot(nil)

	m.add(0, 0, 4, 40)
	m.add(1, 1, 6, 60)
	second := m.Snapshot(nil)

	win := second.Delta(first, nil)
	if win.BinRecs[0] != 4 || win.BinRecs[1] != 6 {
		t.Errorf("window BinRecs = %v", win.BinRecs)
	}
	if win.WorkerRecs[0] != 4 || win.WorkerRecs[1] != 6 {
		t.Errorf("window WorkerRecs = %v", win.WorkerRecs)
	}
	if win.TotalRecs() != 10 {
		t.Errorf("TotalRecs = %d, want 10", win.TotalRecs())
	}
	whole := second.Delta(nil, nil)
	if whole.BinRecs[0] != 14 {
		t.Errorf("nil-prev delta BinRecs[0] = %d, want 14", whole.BinRecs[0])
	}
}

// TestLoadSnapshotRecsUnder groups bin loads by an assignment.
func TestLoadSnapshotRecsUnder(t *testing.T) {
	s := &LoadSnapshot{Workers: 3, Bins: 4, BinRecs: []uint64{5, 1, 2, 8}}
	loads := s.RecsUnder([]int{0, 1, 0, 2}, nil)
	if loads[0] != 7 || loads[1] != 1 || loads[2] != 8 {
		t.Errorf("RecsUnder = %v", loads)
	}
}
