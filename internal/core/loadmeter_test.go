package core_test

import (
	"testing"

	"megaphone/internal/core"
	"megaphone/internal/dataflow"
)

// meteredWorkload drives epochs*perEpoch*workers records through a megaphone
// counting operator, optionally metered, and returns the meter.
func meteredWorkload(epochs, perEpoch int, withMeter bool) *core.LoadMeter {
	const workers, logBins = 2, 4
	var meter *core.LoadMeter
	if withMeter {
		meter = core.NewLoadMeter(workers, logBins)
	}
	exec := dataflow.NewExecution(dataflow.Config{Workers: workers})
	var inputs []*dataflow.InputHandle[uint64]
	var ctls []*dataflow.InputHandle[core.Move]
	exec.Build(func(w *dataflow.Worker) {
		ctl, ctlStream := dataflow.NewInput[core.Move](w, "control")
		ctls = append(ctls, ctl)
		in, data := dataflow.NewInput[uint64](w, "data")
		inputs = append(inputs, in)
		out := core.Unary(w,
			core.Config{Name: "metered-count", LogBins: logBins, Meter: meter},
			ctlStream, data,
			func(k uint64) uint64 { return core.Mix64(k) },
			func() *uint64 { return new(uint64) },
			func(t core.Time, k uint64, s *uint64, _ *core.Notificator[uint64, uint64, uint64], emit func(uint64)) {
				*s++
			}, nil)
		dataflow.NewProbe(w, out)
	})
	exec.Start()
	for e := 1; e <= epochs; e++ {
		t := core.Time(e)
		for wi, in := range inputs {
			batch := make([]uint64, perEpoch)
			for i := range batch {
				batch[i] = uint64(wi*perEpoch + i)
			}
			in.SendBatchAt(t, batch)
		}
		for _, h := range ctls {
			h.AdvanceTo(t + 1)
		}
		for _, in := range inputs {
			in.AdvanceTo(t + 1)
		}
	}
	for _, h := range ctls {
		h.Close()
	}
	for _, in := range inputs {
		in.Close()
	}
	exec.Wait()
	return meter
}

// TestLoadMeterObservesApplications: every applied record lands in the
// meter, bins match the routing hash, and worker attribution follows the
// initial round-robin assignment (no migration in this run).
func TestLoadMeterObservesApplications(t *testing.T) {
	const epochs, perEpoch, workers, logBins = 20, 64, 2, 4
	meter := meteredWorkload(epochs, perEpoch, true)
	s := meter.Snapshot(nil)

	wantTotal := uint64(epochs * perEpoch * workers)
	if got := s.TotalRecs(); got != wantTotal {
		t.Fatalf("metered %d records, want %d", got, wantTotal)
	}
	// Expected per-bin counts from the routing hash (keys repeat per epoch).
	wantBin := make([]uint64, 1<<logBins)
	for wi := 0; wi < workers; wi++ {
		for i := 0; i < perEpoch; i++ {
			k := uint64(wi*perEpoch + i)
			wantBin[core.BinOf(core.Mix64(k), logBins)] += epochs
		}
	}
	for b, want := range wantBin {
		if s.BinRecs[b] != want {
			t.Errorf("bin %d: metered %d, want %d", b, s.BinRecs[b], want)
		}
	}
	// With no migration, bin b's work runs on worker InitialWorker(b).
	wantWorker := make([]uint64, workers)
	for b, want := range wantBin {
		wantWorker[core.InitialWorker(b, workers)] += want
	}
	for w, want := range wantWorker {
		if s.WorkerRecs[w] != want {
			t.Errorf("worker %d: metered %d, want %d", w, s.WorkerRecs[w], want)
		}
	}
	var nanos uint64
	for _, n := range s.BinNanos {
		nanos += n
	}
	if nanos == 0 {
		t.Error("no service time metered")
	}
}

// TestMeteredApplyAllocsPerRecord pins the allocation cost of the metered
// apply path, the metering analogue of TestExchangePathAllocsPerRecord: the
// meter's scratch (mCount/mTouched) and cells are sized at construction, so
// enabling it must add a fixed per-run overhead, not a per-record one.
func TestMeteredApplyAllocsPerRecord(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation pin is not meaningful under -short")
	}
	const epochs, perEpoch = 200, 256
	records := float64(epochs * perEpoch * 2)
	// Warm up both variants (lazy growth of queues, scratch, heaps).
	meteredWorkload(epochs, perEpoch, false)
	meteredWorkload(epochs, perEpoch, true)
	without := testing.AllocsPerRun(3, func() { meteredWorkload(epochs, perEpoch, false) })
	with := testing.AllocsPerRun(3, func() { meteredWorkload(epochs, perEpoch, true) })

	if perRecord := with / records; perRecord > 0.2 {
		t.Errorf("metered apply path allocates %.3f allocs/record (budget 0.2)", perRecord)
	}
	// The meter itself may only add a per-run constant (its cells and the
	// per-worker scratch), generously bounded here against measurement noise.
	if delta := with - without; delta > 0.01*records {
		t.Errorf("metering added %.0f allocs/run over the unmetered path (budget %.0f)",
			delta, 0.01*records)
	}
}
