package core

import (
	"fmt"

	"megaphone/internal/binenc"
)

// This file implements the BinaryRec contract for the record types that
// cross worker boundaries inside a megaphone operator — the control Move,
// the routed data envelope, and the StateMsg migration chunk — so that in a
// multi-process execution their exchange edges ride the hand-rolled wire
// encoding instead of gob (see dataflow's wire codecs, which discover these
// methods structurally).

// AppendBinaryRec implements BinaryRec.
func (m *Move) AppendBinaryRec(buf []byte) []byte {
	buf = binenc.AppendUvarint(buf, uint64(m.Bin))
	buf = binenc.AppendUvarint(buf, uint64(m.Worker))
	return binenc.AppendUvarint(buf, uint64(m.RestoreEpoch))
}

// DecodeBinaryRec implements BinaryRec.
func (m *Move) DecodeBinaryRec(data []byte) ([]byte, error) {
	bin, data, err := binenc.Uvarint(data)
	if err != nil {
		return nil, fmt.Errorf("megaphone: decoding Move.Bin: %w", err)
	}
	w, data, err := binenc.Uvarint(data)
	if err != nil {
		return nil, fmt.Errorf("megaphone: decoding Move.Worker: %w", err)
	}
	re, data, err := binenc.Uvarint(data)
	if err != nil {
		return nil, fmt.Errorf("megaphone: decoding Move.RestoreEpoch: %w", err)
	}
	m.Bin, m.Worker, m.RestoreEpoch = int(bin), int(w), Time(re)
	return data, nil
}

// AppendBinaryRec implements BinaryRec. Direct-mode messages (Dir set) move
// bins by pointer and are only sound inside one process; configure a
// serializing codec (gob or binary) for cluster runs.
func (m *StateMsg) AppendBinaryRec(buf []byte) []byte {
	if m.Dir != nil {
		panic("megaphone: direct-transfer StateMsg cannot cross a process boundary; use -transfer gob or binary in cluster runs")
	}
	buf = binenc.AppendUvarint(buf, uint64(m.Bin))
	buf = binenc.AppendUvarint(buf, uint64(m.To))
	buf = binenc.AppendUvarint(buf, uint64(m.Seq))
	buf = binenc.AppendBool(buf, m.Last)
	buf = binenc.AppendUvarint(buf, uint64(len(m.Bytes)))
	return append(buf, m.Bytes...)
}

// DecodeBinaryRec implements BinaryRec. The payload bytes are copied out:
// the bin is typically installed on a later scheduling than the decode, and
// the wire buffer is transient.
func (m *StateMsg) DecodeBinaryRec(data []byte) ([]byte, error) {
	bin, data, err := binenc.Uvarint(data)
	if err != nil {
		return nil, fmt.Errorf("megaphone: decoding StateMsg.Bin: %w", err)
	}
	to, data, err := binenc.Uvarint(data)
	if err != nil {
		return nil, fmt.Errorf("megaphone: decoding StateMsg.To: %w", err)
	}
	seq, data, err := binenc.Uvarint(data)
	if err != nil {
		return nil, fmt.Errorf("megaphone: decoding StateMsg.Seq: %w", err)
	}
	last, data, err := binenc.Bool(data)
	if err != nil {
		return nil, fmt.Errorf("megaphone: decoding StateMsg.Last: %w", err)
	}
	n, data, err := binenc.Count(data, 1)
	if err != nil {
		return nil, fmt.Errorf("megaphone: decoding StateMsg payload length: %w", err)
	}
	m.Bin, m.To, m.Seq, m.Last, m.Dir = int(bin), int(to), int(seq), last, nil
	m.Bytes = append([]byte(nil), data[:n]...)
	return data[n:], nil
}

// wireRecCapable reports whether records of type R can cross a process
// boundary on the binary path: either *R implements a capable BinaryRec, or
// R is one of the supported scalars.
func wireRecCapable[R any]() bool {
	var z R
	if br, ok := any(&z).(BinaryRec); ok {
		return capable(br)
	}
	return scalarCapable(z)
}

// appendWireRec appends one record through its BinaryRec implementation or
// the scalar fast path (ptr is *R; converting a pointer to an interface
// does not allocate, which keeps the exchange encode path clean).
func appendWireRec(ptr any, buf []byte) []byte {
	switch p := ptr.(type) {
	case BinaryRec:
		return p.AppendBinaryRec(buf)
	case *uint64:
		return binenc.AppendUvarint(buf, *p)
	case *int64:
		return binenc.AppendVarint(buf, *p)
	case *int:
		return binenc.AppendVarint(buf, int64(*p))
	case *uint32:
		return binenc.AppendUvarint(buf, uint64(*p))
	case *int32:
		return binenc.AppendVarint(buf, int64(*p))
	case *uint:
		return binenc.AppendUvarint(buf, uint64(*p))
	case *string:
		return binenc.AppendString(buf, *p)
	case *bool:
		return binenc.AppendBool(buf, *p)
	case *Time:
		return binenc.AppendUvarint(buf, uint64(*p))
	case *[2]uint64:
		buf = binenc.AppendU64(buf, p[0])
		return binenc.AppendU64(buf, p[1])
	}
	panic(fmt.Sprintf("megaphone: record type %T cannot cross a process boundary", ptr))
}

// decodeWireRec fills *ptr from the front of data, mirroring appendWireRec.
func decodeWireRec(ptr any, data []byte) ([]byte, error) {
	if br, ok := ptr.(BinaryRec); ok {
		return br.DecodeBinaryRec(data)
	}
	return decodeScalar(ptr, data)
}

// BinaryCapable reports whether this routed instantiation can use the
// binary wire encoding (the record type must be binary-capable or scalar).
func (r *routed[R]) BinaryCapable() bool { return wireRecCapable[R]() }

// AppendBinaryRec implements BinaryRec for the routed envelope: the
// destination worker, the bin, then the record.
func (r *routed[R]) AppendBinaryRec(buf []byte) []byte {
	buf = binenc.AppendUvarint(buf, uint64(r.To))
	buf = binenc.AppendUvarint(buf, uint64(r.Bin))
	return appendWireRec(&r.Rec, buf)
}

// DecodeBinaryRec implements BinaryRec.
func (r *routed[R]) DecodeBinaryRec(data []byte) ([]byte, error) {
	to, data, err := binenc.Uvarint(data)
	if err != nil {
		return nil, fmt.Errorf("megaphone: decoding routed.To: %w", err)
	}
	bin, data, err := binenc.Uvarint(data)
	if err != nil {
		return nil, fmt.Errorf("megaphone: decoding routed.Bin: %w", err)
	}
	r.To, r.Bin = int32(to), int32(bin)
	data, err = decodeWireRec(&r.Rec, data)
	if err != nil {
		return nil, fmt.Errorf("megaphone: decoding routed record: %w", err)
	}
	return data, nil
}
