package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestBinOf checks the top-bits binning of Section 4.2.
func TestBinOf(t *testing.T) {
	if got := BinOf(0xffffffffffffffff, 4); got != 15 {
		t.Errorf("BinOf(max, 4) = %d, want 15", got)
	}
	if got := BinOf(0, 4); got != 0 {
		t.Errorf("BinOf(0, 4) = %d, want 0", got)
	}
	if got := BinOf(0x8000000000000000, 1); got != 1 {
		t.Errorf("BinOf(msb, 1) = %d, want 1", got)
	}
	if got := BinOf(12345, 0); got != 0 {
		t.Errorf("BinOf(x, 0) = %d, want 0", got)
	}
	// Property: bin always within range.
	prop := func(h uint64, lb uint8) bool {
		l := int(lb % 20)
		b := BinOf(h, l)
		return b >= 0 && b < 1<<uint(l)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestMix64Distributes: sequential keys spread across bins roughly evenly.
func TestMix64Distributes(t *testing.T) {
	const logBins = 4
	counts := make([]int, 1<<logBins)
	const n = 1 << 14
	for k := uint64(0); k < n; k++ {
		counts[BinOf(Mix64(k), logBins)]++
	}
	want := n / (1 << logBins)
	for b, c := range counts {
		if c < want/2 || c > want*2 {
			t.Errorf("bin %d has %d keys, want ~%d", b, c, want)
		}
	}
}

// TestBinStatePendingHeap: pushPending/popPendingAt maintain time order.
func TestBinStatePendingHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b := &BinState[int, int]{State: new(int)}
	byTime := map[Time][]int{}
	for i := 0; i < 500; i++ {
		tm := Time(rng.Intn(50))
		b.pushPending(tm, i)
		byTime[tm] = append(byTime[tm], i)
	}
	prev := Time(0)
	for len(b.Pending) > 0 {
		head, _ := b.headPending()
		if head < prev {
			t.Fatalf("heap order violated: %v after %v", head, prev)
		}
		prev = head
		recs := b.popPendingAt(head)
		if len(recs) != len(byTime[head]) {
			t.Fatalf("time %v: popped %d, want %d", head, len(recs), len(byTime[head]))
		}
		delete(byTime, head)
	}
	if len(byTime) != 0 {
		t.Fatalf("%d times never popped", len(byTime))
	}
}

// TestCodecRoundTrip: gob encode/decode preserves state and pending records.
func TestCodecRoundTrip(t *testing.T) {
	type rec struct {
		Key uint64
		Val int64
	}
	type state struct {
		M map[uint64]int64
	}
	b := &BinState[rec, state]{State: &state{M: map[uint64]int64{1: 10, 2: -5}}}
	b.pushPending(7, rec{Key: 1, Val: 2})
	b.pushPending(3, rec{Key: 9, Val: 4})

	enc, err := encodeBin(b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeBin[rec, state](enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.State.M) != 2 || got.State.M[1] != 10 || got.State.M[2] != -5 {
		t.Errorf("state mismatch: %+v", got.State.M)
	}
	if len(got.Pending) != 2 {
		t.Fatalf("pending length %d, want 2", len(got.Pending))
	}
	if head, _ := got.headPending(); head != 3 {
		t.Errorf("pending head = %v, want 3", head)
	}
}

// TestCodecEmpty: empty bins round-trip.
func TestCodecEmpty(t *testing.T) {
	b := &BinState[uint64, int]{State: new(int)}
	enc, err := encodeBin(b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeBin[uint64, int](enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Pending) != 0 || *got.State != 0 {
		t.Errorf("empty bin round-trip: %+v", got)
	}
}

// TestOwnerHistory: routeAt-style lookups against the assignment history,
// including compaction.
func TestOwnerHistory(t *testing.T) {
	f := &fOp[int, int, int]{peers: 4, hist: make([][]assign, 8)}
	bin := 5
	if got := f.ownerAt(bin, 100); got != 5%4 {
		t.Fatalf("initial owner = %d", got)
	}
	f.hist[bin] = append(f.hist[bin], assign{From: 10, Worker: 2})
	f.hist[bin] = append(f.hist[bin], assign{From: 20, Worker: 0})
	cases := []struct {
		t    Time
		want int
	}{{5, 1}, {10, 2}, {15, 2}, {20, 0}, {99, 0}}
	for _, c := range cases {
		if got := f.ownerAt(bin, c.t); got != c.want {
			t.Errorf("ownerAt(%v) = %d, want %d", c.t, got, c.want)
		}
	}
	if got := f.ownerBefore(bin, 20); got != 2 {
		t.Errorf("ownerBefore(20) = %d, want 2", got)
	}
	if got := f.ownerBefore(bin, 10); got != 1 {
		t.Errorf("ownerBefore(10) = %d, want 1", got)
	}
	// Compaction keeps the entry effective at t and later ones.
	f.compact(bin, 20)
	if len(f.hist[bin]) != 1 || f.hist[bin][0].Worker != 0 {
		t.Errorf("after compact: %+v", f.hist[bin])
	}
	if got := f.ownerAt(bin, 25); got != 0 {
		t.Errorf("post-compact ownerAt(25) = %d", got)
	}
}

// TestBinsHolderTakeInstall covers the shared-bin lifecycle.
func TestBinsHolderTakeInstall(t *testing.T) {
	h := newBinsHolder[int, int](3)
	if h.occupied() != 0 {
		t.Fatal("fresh holder occupied")
	}
	b := h.getOrCreate(2, func() *int { return new(int) })
	*b.State = 42
	if h.occupied() != 1 {
		t.Fatal("occupied != 1")
	}
	taken := h.take(2)
	if taken == nil || *taken.State != 42 {
		t.Fatal("take lost state")
	}
	if h.data[2] != nil {
		t.Fatal("take did not clear")
	}
	h.install(0, taken)
	if *h.data[0].State != 42 {
		t.Fatal("install mismatch")
	}
	if h.take(5) != nil {
		t.Fatal("taking an empty bin should return nil")
	}
}

// TestMatchingConversion sanity-checks the Move type used on the wire.
func TestInitialWorker(t *testing.T) {
	for peers := 1; peers <= 8; peers++ {
		for b := 0; b < 64; b++ {
			w := InitialWorker(b, peers)
			if w < 0 || w >= peers {
				t.Fatalf("InitialWorker(%d, %d) = %d out of range", b, peers, w)
			}
		}
	}
}
