package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"megaphone/internal/binenc"
)

// TestBinOf checks the top-bits binning of Section 4.2.
func TestBinOf(t *testing.T) {
	if got := BinOf(0xffffffffffffffff, 4); got != 15 {
		t.Errorf("BinOf(max, 4) = %d, want 15", got)
	}
	if got := BinOf(0, 4); got != 0 {
		t.Errorf("BinOf(0, 4) = %d, want 0", got)
	}
	if got := BinOf(0x8000000000000000, 1); got != 1 {
		t.Errorf("BinOf(msb, 1) = %d, want 1", got)
	}
	if got := BinOf(12345, 0); got != 0 {
		t.Errorf("BinOf(x, 0) = %d, want 0", got)
	}
	// Property: bin always within range.
	prop := func(h uint64, lb uint8) bool {
		l := int(lb % 20)
		b := BinOf(h, l)
		return b >= 0 && b < 1<<uint(l)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestMix64Distributes: sequential keys spread across bins roughly evenly.
func TestMix64Distributes(t *testing.T) {
	const logBins = 4
	counts := make([]int, 1<<logBins)
	const n = 1 << 14
	for k := uint64(0); k < n; k++ {
		counts[BinOf(Mix64(k), logBins)]++
	}
	want := n / (1 << logBins)
	for b, c := range counts {
		if c < want/2 || c > want*2 {
			t.Errorf("bin %d has %d keys, want ~%d", b, c, want)
		}
	}
}

// TestBinStatePendingHeap: pushPending/popPendingAt maintain time order.
func TestBinStatePendingHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b := &BinState[int, int]{State: new(int)}
	byTime := map[Time][]int{}
	for i := 0; i < 500; i++ {
		tm := Time(rng.Intn(50))
		b.PushPending(tm, i)
		byTime[tm] = append(byTime[tm], i)
	}
	prev := Time(0)
	for len(b.Pending) > 0 {
		head, _ := b.headPending()
		if head < prev {
			t.Fatalf("heap order violated: %v after %v", head, prev)
		}
		prev = head
		recs := b.popPendingAt(head, nil)
		if len(recs) != len(byTime[head]) {
			t.Fatalf("time %v: popped %d, want %d", head, len(recs), len(byTime[head]))
		}
		delete(byTime, head)
	}
	if len(byTime) != 0 {
		t.Fatalf("%d times never popped", len(byTime))
	}
}

// TestCodecRoundTrip: gob encode/decode preserves state and pending records.
func TestCodecRoundTrip(t *testing.T) {
	type rec struct {
		Key uint64
		Val int64
	}
	type state struct {
		M map[uint64]int64
	}
	b := &BinState[rec, state]{State: &state{M: map[uint64]int64{1: 10, 2: -5}}}
	b.PushPending(7, rec{Key: 1, Val: 2})
	b.PushPending(3, rec{Key: 9, Val: 4})

	enc, err := TransferGob.EncodeBin(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := &BinState[rec, state]{State: new(state)}
	if err := TransferGob.DecodeBin(got, enc); err != nil {
		t.Fatal(err)
	}
	if len(got.State.M) != 2 || got.State.M[1] != 10 || got.State.M[2] != -5 {
		t.Errorf("state mismatch: %+v", got.State.M)
	}
	if len(got.Pending) != 2 {
		t.Fatalf("pending length %d, want 2", len(got.Pending))
	}
	if head, _ := got.headPending(); head != 3 {
		t.Errorf("pending head = %v, want 3", head)
	}
}

// TestCodecEmpty: empty bins round-trip under every serializing codec.
func TestCodecEmpty(t *testing.T) {
	for _, codec := range []Codec{TransferGob, TransferBinary} {
		b := &BinState[uint64, int]{State: new(int)}
		enc, err := codec.EncodeBin(b, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := &BinState[uint64, int]{State: new(int)}
		if err := codec.DecodeBin(got, enc); err != nil {
			t.Fatal(err)
		}
		if len(got.Pending) != 0 || *got.State != 0 {
			t.Errorf("%s: empty bin round-trip: %+v", codec.Name(), got)
		}
	}
}

// TestAppendChunks: payload splitting respects the chunk bound, covers the
// payload exactly, and degenerates to one message when small or disabled.
func TestAppendChunks(t *testing.T) {
	payload := make([]byte, 1000)
	for i := range payload {
		payload[i] = byte(i)
	}
	cases := []struct {
		chunk int
		want  int // expected message count
	}{{-1, 1}, {1000, 1}, {2000, 1}, {999, 2}, {300, 4}, {1, 1000}}
	for _, c := range cases {
		msgs := appendChunks(nil, 7, 3, payload, c.chunk)
		if len(msgs) != c.want {
			t.Fatalf("chunk=%d: %d msgs, want %d", c.chunk, len(msgs), c.want)
		}
		var rejoined []byte
		for i, m := range msgs {
			if m.Bin != 7 || m.To != 3 {
				t.Fatalf("chunk=%d: msg %d misaddressed: %+v", c.chunk, i, m)
			}
			if m.Seq != i {
				t.Fatalf("chunk=%d: msg %d has Seq %d", c.chunk, i, m.Seq)
			}
			if got := m.Last; got != (i == len(msgs)-1) {
				t.Fatalf("chunk=%d: msg %d Last=%v", c.chunk, i, got)
			}
			if c.chunk > 0 && len(m.Bytes) > c.chunk {
				t.Fatalf("chunk=%d: msg %d carries %d bytes", c.chunk, i, len(m.Bytes))
			}
			rejoined = append(rejoined, m.Bytes...)
		}
		if !bytes.Equal(rejoined, payload) {
			t.Fatalf("chunk=%d: rejoined payload differs", c.chunk)
		}
	}
}

// TestChunkAssembler: chunked payloads reassemble bin-by-bin, interleaved
// bins do not collide, and single-chunk payloads pass through unbuffered.
func TestChunkAssembler(t *testing.T) {
	var a chunkAssembler
	p1 := []byte("the first payload")
	p2 := []byte("another payload entirely")
	msgs1 := appendChunks(nil, 1, 0, p1, 5)
	msgs2 := appendChunks(nil, 2, 0, p2, 7)
	// Interleave the two bins' chunks; each bin's chunks stay in order.
	var interleaved []StateMsg
	for i := 0; i < len(msgs1) || i < len(msgs2); i++ {
		if i < len(msgs1) {
			interleaved = append(interleaved, msgs1[i])
		}
		if i < len(msgs2) {
			interleaved = append(interleaved, msgs2[i])
		}
	}
	got := map[int][]byte{}
	for _, m := range interleaved {
		if payload, done := a.add(m); done {
			got[m.Bin] = payload
		}
	}
	if !bytes.Equal(got[1], p1) || !bytes.Equal(got[2], p2) {
		t.Fatalf("reassembly mismatch: %q %q", got[1], got[2])
	}
	if len(a.partial) != 0 {
		t.Fatalf("assembler retained %d partial payloads", len(a.partial))
	}
	// Single-chunk payload returns the original slice without copying.
	single := StateMsg{Bin: 9, Bytes: p1, Last: true}
	if payload, done := a.add(single); !done || &payload[0] != &p1[0] {
		t.Fatal("single-chunk payload was copied or buffered")
	}
	// Out-of-order chunks violate an engine invariant and must fail loudly.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("out-of-order chunk did not panic")
			}
		}()
		var b chunkAssembler
		b.add(StateMsg{Bin: 1, Seq: 1, Bytes: []byte("x")})
	}()
}

// TestDecodeMalformedCounts: a corrupt payload whose length prefix claims
// far more entries than the payload holds must error, not allocate.
func TestDecodeMalformedCounts(t *testing.T) {
	// Binary format tag + absurd map count, nothing else.
	payload := append([]byte{binFormatBinary}, binenc.AppendUvarint(nil, 1<<60)...)
	bin := &BinState[KV[uint64, int64], MapState[uint64, int64]]{
		State: &MapState[uint64, int64]{M: map[uint64]int64{}},
	}
	if err := TransferBinary.DecodeBin(bin, payload); err == nil {
		t.Fatal("absurd map count decoded without error")
	}
	// Valid empty state followed by an absurd pending count.
	good := binenc.AppendUvarint([]byte{binFormatBinary}, 0) // empty map
	good = binenc.AppendUvarint(good, 1<<60)                 // pending count
	if err := TransferBinary.DecodeBin(bin, good); err == nil {
		t.Fatal("absurd pending count decoded without error")
	}
}

// TestOwnerHistory: routeAt-style lookups against the assignment history,
// including compaction.
func TestOwnerHistory(t *testing.T) {
	f := &fOp[int, int, int]{peers: 4, hist: make([][]assign, 8)}
	bin := 5
	if got := f.ownerAt(bin, 100); got != 5%4 {
		t.Fatalf("initial owner = %d", got)
	}
	f.hist[bin] = append(f.hist[bin], assign{From: 10, Worker: 2})
	f.hist[bin] = append(f.hist[bin], assign{From: 20, Worker: 0})
	cases := []struct {
		t    Time
		want int
	}{{5, 1}, {10, 2}, {15, 2}, {20, 0}, {99, 0}}
	for _, c := range cases {
		if got := f.ownerAt(bin, c.t); got != c.want {
			t.Errorf("ownerAt(%v) = %d, want %d", c.t, got, c.want)
		}
	}
	if got := f.ownerBefore(bin, 20); got != 2 {
		t.Errorf("ownerBefore(20) = %d, want 2", got)
	}
	if got := f.ownerBefore(bin, 10); got != 1 {
		t.Errorf("ownerBefore(10) = %d, want 1", got)
	}
	// Compaction keeps the entry effective at t and later ones.
	f.compact(bin, 20)
	if len(f.hist[bin]) != 1 || f.hist[bin][0].Worker != 0 {
		t.Errorf("after compact: %+v", f.hist[bin])
	}
	if got := f.ownerAt(bin, 25); got != 0 {
		t.Errorf("post-compact ownerAt(25) = %d", got)
	}
}

// TestBinsHolderTakeInstall covers the shared-bin lifecycle.
func TestBinsHolderTakeInstall(t *testing.T) {
	h := newBinsHolder[int, int](3)
	if h.occupied() != 0 {
		t.Fatal("fresh holder occupied")
	}
	b := h.getOrCreate(2, func() *int { return new(int) })
	*b.State = 42
	if h.occupied() != 1 {
		t.Fatal("occupied != 1")
	}
	taken := h.take(2)
	if taken == nil || *taken.State != 42 {
		t.Fatal("take lost state")
	}
	if h.data[2] != nil {
		t.Fatal("take did not clear")
	}
	h.install(0, taken)
	if *h.data[0].State != 42 {
		t.Fatal("install mismatch")
	}
	if h.take(5) != nil {
		t.Fatal("taking an empty bin should return nil")
	}
}

// TestMatchingConversion sanity-checks the Move type used on the wire.
func TestInitialWorker(t *testing.T) {
	for peers := 1; peers <= 8; peers++ {
		for b := 0; b < 64; b++ {
			w := InitialWorker(b, peers)
			if w < 0 || w >= peers {
				t.Fatalf("InitialWorker(%d, %d) = %d out of range", b, peers, w)
			}
		}
	}
}
