package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// EnvRef checks the batch-envelope refcount protocol (internal/dataflow's
// batchEnv: every enqueue increfs, every consumer releases — see batch.go's
// ownership comment). The analyzer is name-driven so it applies to any type
// speaking the protocol: a call to a method named incref / release, or to
// the increfAny / releaseAny shims, is a refcount event on the receiver
// (respectively the last argument). Three rules, all within one
// straight-line statement list (the protocol's real call sites are
// deliberately adjacent — distance is what made PR 9's first cut leak):
//
//   - an incref must be followed within two statements by the enqueue it
//     protects (an append-assignment, a channel send, or an enqueue/push
//     call); an incref with no adjacent consumer is a leaked reference
//   - releasing the same expression twice with no intervening incref or
//     reassignment is a double release: the envelope recycles while the
//     first consumer can still see it
//   - mentioning an expression after it was released is a use-after-free
//     of a potentially recycled buffer
//
// Functions implementing the protocol itself (names containing incref or
// release) are exempt.
var EnvRef = &Analyzer{
	Name: "envref",
	Doc:  "check incref/release pairing of refcounted batch envelopes",
	Run:  runEnvRef,
}

func runEnvRef(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			lower := strings.ToLower(fd.Name.Name)
			if strings.Contains(lower, "incref") || strings.Contains(lower, "release") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BlockStmt:
					checkEnvList(pass, n.List)
				case *ast.CaseClause:
					checkEnvList(pass, n.Body)
				case *ast.CommClause:
					checkEnvList(pass, n.Body)
				}
				return true
			})
		}
	}
	return nil
}

// refEvent classifies a statement as an incref or release of an expression.
func refEvent(stmt ast.Stmt) (kind string, subject ast.Expr) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", nil
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return "", nil
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "incref":
			return "incref", fun.X
		case "release":
			return "release", fun.X
		}
	case *ast.Ident:
		if len(call.Args) > 0 {
			switch fun.Name {
			case "increfAny":
				return "incref", call.Args[len(call.Args)-1]
			case "releaseAny":
				return "release", call.Args[len(call.Args)-1]
			}
		}
	}
	return "", nil
}

func checkEnvList(pass *Pass, list []ast.Stmt) {
	released := map[string]ast.Stmt{} // expr -> releasing statement
	for i, stmt := range list {
		kind, subject := refEvent(stmt)
		subjectStr := ""
		if subject != nil {
			subjectStr = types.ExprString(subject)
		}

		// Use-after-release: the statement mentions a released expression.
		// The releasing statement itself, a re-release (reported as a double
		// release below), and assignment LHSes (writes/rebinds, not reads)
		// are excluded.
		if len(released) > 0 {
			var scan []ast.Node
			if as, ok := stmt.(*ast.AssignStmt); ok {
				for _, r := range as.Rhs {
					scan = append(scan, r)
				}
			} else {
				scan = append(scan, stmt)
			}
			for _, root := range scan {
				ast.Inspect(root, func(n ast.Node) bool {
					e, ok := n.(ast.Expr)
					if !ok {
						return true
					}
					s := types.ExprString(e)
					if _, ok := released[s]; ok && !(kind != "" && s == subjectStr) {
						pass.Reportf(e.Pos(), "envelope %s used after release", s)
						delete(released, s) // report once
						return false
					}
					return true
				})
			}
		}

		switch kind {
		case "release":
			if _, ok := released[subjectStr]; ok {
				pass.Reportf(stmt.Pos(), "envelope %s released twice on this path (double release recycles a buffer a consumer can still see)", subjectStr)
			}
			released[subjectStr] = stmt
		case "incref":
			delete(released, subjectStr)
			if !enqueueFollows(list, i) {
				pass.Reportf(stmt.Pos(), "incref of %s with no adjacent enqueue (leaked reference: nothing will release it)", subjectStr)
			}
		default:
			// Reassignment clears release tracking for the assigned names.
			if as, ok := stmt.(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					delete(released, types.ExprString(lhs))
				}
			}
		}
	}
}

// enqueueFollows reports whether one of the two statements after list[i]
// hands the envelope to a consumer: an append-assignment (queue push), a
// channel send, or a call whose name marks it an enqueue.
func enqueueFollows(list []ast.Stmt, i int) bool {
	for j := i + 1; j < len(list) && j <= i+2; j++ {
		switch s := list[j].(type) {
		case *ast.SendStmt:
			return true
		case *ast.AssignStmt:
			for _, rhs := range s.Rhs {
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
					if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
						return true
					}
				}
			}
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				name := ""
				switch fun := ast.Unparen(call.Fun).(type) {
				case *ast.Ident:
					name = fun.Name
				case *ast.SelectorExpr:
					name = fun.Sel.Name
				}
				lower := strings.ToLower(name)
				if strings.Contains(lower, "enqueue") || strings.Contains(lower, "push") || strings.Contains(lower, "deliver") {
					return true
				}
			}
		}
	}
	return false
}
