package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SendUnderLock flags blocking communication while holding a mutex: a
// channel send (outside a select with a default case) or a call to a
// transport send method (Send / SendKeyed / BroadcastControl on a type
// from a package named transport, or on the Mesh) between Lock and Unlock
// of a sync.Mutex / sync.RWMutex. This is the dispatch/reconnect deadlock
// class: PR 4's per-peer dispatch mutex serializes inbound frames, and a
// handler that blocks sending while holding it deadlocks against a peer
// doing the same in the opposite direction. The transport's own Send is
// deliberately non-blocking (unbounded queue) for exactly this reason —
// the analyzer keeps lock-ordering assumptions like that from being
// silently violated by new code paths.
//
// The analysis is intraprocedural and branch-aware: locks taken inside a
// branch are held only within it; defer mu.Unlock() holds the lock to the
// end of the function; function literals start with an empty lock set
// (they run on other goroutines or after return).
var SendUnderLock = &Analyzer{
	Name: "sendunderlock",
	Doc:  "no blocking channel or transport send while holding a mutex",
	Run:  runSendUnderLock,
}

func runSendUnderLock(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			walkLocked(pass, fd.Body.List, map[string]bool{})
		}
	}
	return nil
}

// lockEvent reports whether call is sync.Mutex/RWMutex Lock/Unlock (or the
// RLock variants) and on which receiver expression.
func lockEvent(pass *Pass, call *ast.CallExpr) (op string, recv string) {
	fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch fun.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	obj, ok := pass.Info.Uses[fun.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", ""
	}
	op = "lock"
	if strings.Contains(fun.Sel.Name, "Unlock") {
		op = "unlock"
	}
	return op, types.ExprString(fun.X)
}

// isTransportSend reports whether call is a send on the wire: a method
// named Send / SendKeyed / BroadcastControl whose receiver type is declared
// in a package named transport, or is the dataflow Mesh (whose sends fan
// out to the transport).
func isTransportSend(pass *Pass, call *ast.CallExpr) bool {
	fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch fun.Sel.Name {
	case "Send", "SendKeyed", "BroadcastControl":
	default:
		return false
	}
	obj, ok := pass.Info.Uses[fun.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg := named.Obj().Pkg().Name()
	return pkg == "transport" || named.Obj().Name() == "Mesh"
}

// walkLocked scans a statement list tracking the set of held mutexes,
// recursing into nested statements with copies so branch-local locks stay
// branch-local.
func walkLocked(pass *Pass, list []ast.Stmt, held map[string]bool) {
	for _, stmt := range list {
		walkLockedStmt(pass, stmt, held)
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	c := make(map[string]bool, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

func anyHeld(held map[string]bool) string {
	for k, v := range held {
		if v {
			return k
		}
	}
	return ""
}

func walkLockedStmt(pass *Pass, stmt ast.Stmt, held map[string]bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			switch op, recv := lockEvent(pass, call); op {
			case "lock":
				held[recv] = true
				return
			case "unlock":
				delete(held, recv)
				return
			}
		}
		checkLockedExpr(pass, s.X, held)
	case *ast.DeferStmt:
		if op, recv := lockEvent(pass, s.Call); op == "unlock" {
			// Held until return; nothing to do — the lock stays in held.
			_ = recv
			return
		}
		// The deferred call itself runs after return, outside the walk.
	case *ast.SendStmt:
		if mu := anyHeld(held); mu != "" {
			pass.Reportf(s.Pos(), "blocking channel send while holding %s", mu)
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			if !hasDefault {
				if send, ok := cc.Comm.(*ast.SendStmt); ok {
					if mu := anyHeld(held); mu != "" {
						pass.Reportf(send.Pos(), "blocking channel send while holding %s (select has no default)", mu)
					}
				}
			}
			walkLocked(pass, cc.Body, copyHeld(held))
		}
	case *ast.BlockStmt:
		walkLocked(pass, s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			walkLockedStmt(pass, s.Init, held)
		}
		walkLocked(pass, s.Body.List, copyHeld(held))
		if s.Else != nil {
			walkLockedStmt(pass, s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		walkLocked(pass, s.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		walkLocked(pass, s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				walkLocked(pass, cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				walkLocked(pass, cc.Body, copyHeld(held))
			}
		}
	case *ast.LabeledStmt:
		walkLockedStmt(pass, s.Stmt, held)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			checkLockedExpr(pass, rhs, held)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			checkLockedExpr(pass, r, held)
		}
	case *ast.GoStmt:
		// Runs on another goroutine with its own (empty) lock context.
	}
}

// checkLockedExpr flags transport sends in expression position while a
// mutex is held; function literals reset the held set.
func checkLockedExpr(pass *Pass, e ast.Expr, held map[string]bool) {
	mu := anyHeld(held)
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			walkLocked(pass, n.Body.List, map[string]bool{})
			return false
		case *ast.CallExpr:
			if mu != "" && isTransportSend(pass, n) {
				pass.Reportf(n.Pos(), "transport send while holding %s (blocking communication under a mutex deadlocks against a peer doing the same)", mu)
			}
		}
		return true
	})
}
