package lint_test

import (
	"strings"
	"testing"

	"megaphone/internal/lint"
	"megaphone/internal/lint/linttest"
)

func TestHotAlloc(t *testing.T) {
	linttest.Run(t, "testdata", lint.HotAlloc, "hotalloc")
}

func TestEnvRef(t *testing.T) {
	linttest.Run(t, "testdata", lint.EnvRef, "envref")
}

func TestAtomicField(t *testing.T) {
	linttest.Run(t, "testdata", lint.AtomicField, "atomicfield")
}

func TestSendUnderLock(t *testing.T) {
	linttest.Run(t, "testdata", lint.SendUnderLock, "sendunderlock")
}

func TestPointstamp(t *testing.T) {
	linttest.Run(t, "testdata", lint.Pointstamp, "pointstamp")
}

// TestAllowMisuse pins the directive hygiene rules directly (the
// diagnostics anchor to the directive lines, which cannot also carry want
// comments): an allow without a justification or naming an unknown or
// missing analyzer is itself a finding, and an unjustified allow does not
// suppress.
func TestAllowMisuse(t *testing.T) {
	pkg, err := lint.LoadFixture("testdata", "allowmisuse")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := lint.Run(pkg, []*lint.Analyzer{lint.HotAlloc})
	wantSubstrings := []string{
		"megalint:allow hotalloc without a justification",
		`megalint:allow for unknown analyzer "nosuchanalyzer"`,
		"megalint:allow without an analyzer name",
		// The three make() calls are all still reported: none of the
		// malformed directives suppresses.
		"make allocates",
		"make allocates",
		"make allocates",
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Message)
	}
	for _, want := range wantSubstrings {
		found := false
		for i, g := range got {
			if strings.Contains(g, want) {
				got = append(got[:i], got[i+1:]...)
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing diagnostic containing %q (remaining: %v)", want, got)
		}
	}
	for _, g := range got {
		t.Errorf("unexpected diagnostic: %s", g)
	}
}
