// Package lint is megaphone's in-tree static-analysis framework: a small,
// dependency-free twin of golang.org/x/tools/go/analysis (the container
// this repo builds in has no module proxy, so the real thing cannot be
// vendored) carrying the project-specific analyzers that prove the
// runtime's concurrency and hot-path invariants at compile time.
//
// The API mirrors go/analysis closely enough that the analyzers would port
// to a x/tools multichecker by swapping the import: an Analyzer has a name,
// a doc string, and a Run function over a Pass; Run reports Diagnostics at
// token positions. Golden-file tests use linttest, which understands the
// same `// want "regexp"` comment convention as analysistest.
//
// Two comment contracts thread through every analyzer:
//
//	//megalint:hotpath
//	    placed in a function's doc comment, declares the function part of
//	    the exchange/apply hot path: the hotalloc analyzer proves it free
//	    of allocating constructs (the static twin of the allocs/op
//	    benchmark pins).
//
//	//megalint:allow <analyzer> <justification>
//	    suppresses <analyzer>'s diagnostics on the line the comment trails
//	    or the line immediately below it; placed in a function's doc
//	    comment it suppresses for the whole function. The justification is
//	    mandatory — an allow without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Diagnostic is one finding, anchored at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
	allow map[string][]allowRange // filename -> suppressed line ranges
}

// allowRange is one //megalint:allow directive's reach within a file.
type allowRange struct {
	analyzer  string // "" = malformed (missing analyzer name)
	justified bool
	from, to  int       // line range, inclusive
	pos       token.Pos // the directive's own position, for reporting
}

// Reportf records a diagnostic unless an allow directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	for _, r := range p.allow[position.Filename] {
		if r.analyzer == p.Analyzer.Name && r.justified && position.Line >= r.from && position.Line <= r.to {
			return
		}
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

const (
	hotpathDirective = "//megalint:hotpath"
	allowDirective   = "//megalint:allow"
)

// Hotpath reports whether the function declaration is annotated
// //megalint:hotpath in its doc comment.
func Hotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == hotpathDirective {
			return true
		}
	}
	return false
}

// indexAllows builds the per-file suppression index for one analyzer pass.
// A trailing directive covers its own line; a directive on its own line
// covers itself and the next line; a directive inside a function's doc
// comment covers the whole function body.
func (p *Pass) indexAllows() {
	p.allow = make(map[string][]allowRange)
	for _, f := range p.Files {
		fname := p.Fset.Position(f.Pos()).Filename

		// Doc-comment directives: map each to the enclosing declaration.
		docOf := make(map[*ast.CommentGroup]ast.Node)
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if d.Doc != nil {
					docOf[d.Doc] = d
				}
			case *ast.GenDecl:
				if d.Doc != nil {
					docOf[d.Doc] = d
				}
			}
		}

		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, allowDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowDirective))
				name, justification, _ := strings.Cut(rest, " ")
				r := allowRange{
					analyzer:  name,
					justified: strings.TrimSpace(justification) != "",
					pos:       c.Pos(),
				}
				if decl, ok := docOf[cg]; ok {
					r.from = p.Fset.Position(decl.Pos()).Line
					r.to = p.Fset.Position(decl.End()).Line
				} else {
					line := p.Fset.Position(c.Pos()).Line
					r.from = line
					r.to = line + 1
				}
				p.allow[fname] = append(p.allow[fname], r)
			}
		}
	}
}

// checkAllows reports malformed allow directives (no analyzer name or no
// justification) so suppressions cannot silently rot. Run once per package
// by the driver, under the analyzer name "megalint".
func checkAllows(pass *Pass, known map[string]bool) {
	for _, ranges := range pass.allow {
		for _, r := range ranges {
			switch {
			case r.analyzer == "":
				pass.diags = append(pass.diags, Diagnostic{
					Pos:      r.pos,
					Message:  "megalint:allow without an analyzer name",
					Analyzer: "megalint",
				})
			case !known[r.analyzer]:
				pass.diags = append(pass.diags, Diagnostic{
					Pos:      r.pos,
					Message:  fmt.Sprintf("megalint:allow for unknown analyzer %q", r.analyzer),
					Analyzer: "megalint",
				})
			case !r.justified:
				pass.diags = append(pass.diags, Diagnostic{
					Pos:      r.pos,
					Message:  fmt.Sprintf("megalint:allow %s without a justification", r.analyzer),
					Analyzer: "megalint",
				})
			}
		}
	}
}

// Run applies the analyzers to the package and returns their diagnostics
// sorted by position. Malformed allow directives are reported alongside.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range All() {
		known[a.Name] = true
	}
	var out []Diagnostic
	for i, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
		}
		pass.indexAllows()
		if i == 0 {
			checkAllows(pass, known)
		}
		if err := a.Run(pass); err != nil {
			pass.diags = append(pass.diags, Diagnostic{
				Pos:      token.NoPos,
				Message:  fmt.Sprintf("analyzer failed: %v", err),
				Analyzer: a.Name,
			})
		}
		out = append(out, pass.diags...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(out[i].Pos), pkg.Fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return out
}

// All returns the full megalint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		HotAlloc,
		EnvRef,
		AtomicField,
		SendUnderLock,
		Pointstamp,
	}
}
