package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPkg is the slice of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
}

// loader type-checks module packages on demand, memoizing results so shared
// dependencies are checked once. Imports outside the module (the standard
// library — the module has no external dependencies) resolve through the
// compiler's source importer, which needs no installed export data.
type loader struct {
	fset  *token.FileSet
	index map[string]*listedPkg // module import path -> metadata
	done  map[string]*Package   // module import path -> loaded package
	std   types.ImporterFrom
}

func newLoader() *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:  fset,
		index: make(map[string]*listedPkg),
		done:  make(map[string]*Package),
		std:   importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
}

// Import implements types.Importer over the loader's two-tier resolution.
func (l *loader) Import(path string) (*types.Package, error) {
	if _, ok := l.index[path]; ok {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, "", 0)
}

func (l *loader) load(path string) (*Package, error) {
	if pkg, ok := l.done[path]; ok {
		return pkg, nil
	}
	meta, ok := l.index[path]
	if !ok {
		return nil, fmt.Errorf("lint: package %s not in module index", path)
	}
	var files []*ast.File
	for _, name := range meta.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(meta.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	cfg := types.Config{Importer: l}
	tpkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.done[path] = pkg
	return pkg, nil
}

// Load type-checks the module packages matching the go list patterns,
// resolved relative to dir (any directory inside the module). Packages are
// returned in import-path order.
func Load(dir string, patterns ...string) ([]*Package, error) {
	l := newLoader()

	// Index every module package so imports among them resolve from source,
	// then expand the requested patterns against the same index.
	all, err := goList(dir, "./...")
	if err != nil {
		return nil, err
	}
	for _, p := range all {
		l.index[p.ImportPath] = p
	}
	matched, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}

	var out []*Package
	for _, m := range matched {
		if _, ok := l.index[m.ImportPath]; !ok {
			continue // outside the module (e.g. a std pattern); not analyzable
		}
		if len(m.GoFiles) == 0 {
			continue
		}
		pkg, err := l.load(m.ImportPath)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

func goList(dir string, patterns ...string) ([]*listedPkg, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,Name,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %w", strings.Join(patterns, " "), err)
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// LoadFixture type-checks one package from a testdata source tree laid out
// analysistest-style: root/src/<importpath>/*.go. Fixture packages may
// import each other and the standard library.
func LoadFixture(root, path string) (*Package, error) {
	l := newLoader()
	src := filepath.Join(root, "src")
	entries, err := os.ReadDir(src)
	if err != nil {
		return nil, err
	}
	var walk func(prefix string, entries []os.DirEntry) error
	walk = func(prefix string, ents []os.DirEntry) error {
		for _, e := range ents {
			if !e.IsDir() {
				continue
			}
			ip := e.Name()
			if prefix != "" {
				ip = prefix + "/" + e.Name()
			}
			dir := filepath.Join(src, filepath.FromSlash(ip))
			names, err := filepath.Glob(filepath.Join(dir, "*.go"))
			if err != nil {
				return err
			}
			if len(names) > 0 {
				var files []string
				for _, n := range names {
					files = append(files, filepath.Base(n))
				}
				sort.Strings(files)
				l.index[ip] = &listedPkg{ImportPath: ip, Dir: dir, GoFiles: files}
			}
			sub, err := os.ReadDir(dir)
			if err != nil {
				return err
			}
			if err := walk(ip, sub); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk("", entries); err != nil {
		return nil, err
	}
	return l.load(path)
}
