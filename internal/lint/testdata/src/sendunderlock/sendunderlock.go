// Package sendunderlock fixtures the sendunderlock analyzer: no blocking
// channel send or transport send while holding a mutex — the
// dispatch/reconnect deadlock class.
package sendunderlock

import (
	"sync"

	"transport"
)

type dispatcher struct {
	mu    sync.Mutex
	inbox chan int
	tr    *transport.Transport
	buf   []byte
}

// deadlockSend is the bug shape: the per-peer dispatch mutex is held while
// blocking on a channel a peer must drain — two processes doing this to
// each other wedge forever.
func (d *dispatcher) deadlockSend(v int) {
	d.mu.Lock()
	d.inbox <- v // want "blocking channel send while holding d.mu"
	d.mu.Unlock()
}

// deadlockDeferred: defer holds the lock to the end of the function, so
// the send is still under it.
func (d *dispatcher) deadlockDeferred(v int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.inbox <- v // want "blocking channel send while holding d.mu"
}

// deadlockTransport: a wire send under the lock blocks on the session the
// peer may be mid-reconnect on.
func (d *dispatcher) deadlockTransport() {
	d.mu.Lock()
	d.tr.Send(1, 32, d.buf) // want "transport send while holding d.mu"
	d.mu.Unlock()
}

// deadlockSelect: a select without default still blocks.
func (d *dispatcher) deadlockSelect(v int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	select {
	case d.inbox <- v: // want "blocking channel send while holding d.mu"
	case <-make(chan int):
	}
}

// okOutsideLock releases before sending.
func (d *dispatcher) okOutsideLock(v int) {
	d.mu.Lock()
	d.buf = append(d.buf, byte(v))
	d.mu.Unlock()
	d.inbox <- v
	d.tr.Send(1, 32, d.buf)
}

// okNonBlocking: select with default cannot block, mirroring the
// transport's poke pattern.
func (d *dispatcher) okNonBlocking(v int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	select {
	case d.inbox <- v:
	default:
	}
}

// okBranchLocal: a lock taken in one branch is not held in a sibling.
func (d *dispatcher) okBranchLocal(v int, lock bool) {
	if lock {
		d.mu.Lock()
		d.buf = d.buf[:0]
		d.mu.Unlock()
	} else {
		d.inbox <- v
	}
}

// okGoroutine: a function literal runs on its own goroutine with its own
// lock context.
func (d *dispatcher) okGoroutine(v int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	go func() {
		d.inbox <- v
	}()
}
