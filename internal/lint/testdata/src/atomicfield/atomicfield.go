// Package atomicfield fixtures the atomicfield analyzer: a field accessed
// through sync/atomic anywhere must be accessed that way everywhere.
package atomicfield

import "sync/atomic"

// meter mirrors the LoadMeter cell shape before it migrated to typed
// atomics: raw integers addressed by atomic functions.
type meter struct {
	recs  uint64
	nanos uint64
	bins  int // never atomic: out of scope
}

func (m *meter) add(n, d uint64) {
	atomic.AddUint64(&m.recs, n)
	atomic.AddUint64(&m.nanos, d)
}

func (m *meter) snapshot() (uint64, uint64) {
	return atomic.LoadUint64(&m.recs), atomic.LoadUint64(&m.nanos)
}

// reset is the mixed-access bug: plain writes racing the atomic adders.
func (m *meter) reset() {
	m.recs = 0  // want "field recs is accessed with sync/atomic elsewhere"
	m.nanos = 0 // want "field nanos is accessed with sync/atomic elsewhere"
	m.bins = 0
}

// peek is the subtler read side: a torn or stale read the race detector
// only sees on the right schedule.
func (m *meter) peek() uint64 {
	return m.recs // want "field recs is accessed with sync/atomic elsewhere"
}

// newMeter initializes via composite literal, which happens before the
// value is shared: not flagged.
func newMeter() *meter {
	return &meter{recs: 0, nanos: 0}
}

// allowedSingleWriter documents the justified exception path.
func (m *meter) allowedSingleWriter() uint64 {
	//megalint:allow atomicfield single-writer row: only this goroutine mutates, readers use Load
	return m.nanos
}
