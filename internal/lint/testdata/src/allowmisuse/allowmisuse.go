// Package allowmisuse fixtures the allow-directive hygiene checks: a
// suppression must name a known analyzer and carry a justification.
// Checked by TestAllowMisuse directly (the diagnostics anchor to the
// directive lines themselves, which cannot also carry want comments).
package allowmisuse

type w struct{ buf []byte }

//megalint:hotpath
func (x *w) naked() {
	//megalint:allow hotalloc
	x.buf = make([]byte, 1) // unjustified allow does not suppress: still a finding
}

//megalint:hotpath
func (x *w) unknown() {
	//megalint:allow nosuchanalyzer because reasons
	x.buf = make([]byte, 1)
}

//megalint:hotpath
func (x *w) nameless() {
	//megalint:allow
	x.buf = make([]byte, 1)
}
