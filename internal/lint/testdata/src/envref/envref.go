// Package envref fixtures the envref analyzer with a miniature of
// internal/dataflow's refcounted batch envelopes (PR 9): every enqueue
// increfs, every consumer releases, and the analyzer's job is to keep
// incref/release sites paired and adjacent.
package envref

import "sync/atomic"

type batchEnv struct {
	s    []int
	refs atomic.Int32
}

func (e *batchEnv) incref() { e.refs.Add(1) }
func (e *batchEnv) release() {
	if e.refs.Add(-1) == 0 {
		e.s = e.s[:0]
	}
}

type queue struct {
	local []*batchEnv
	inbox chan *batchEnv
}

// good is the protocol as written: each incref immediately precedes the
// enqueue taking the reference, and the creator's reference is dropped
// exactly once at the end.
func (q *queue) good(env *batchEnv, broadcast bool) {
	env.incref()
	q.local = append(q.local, env)
	if broadcast {
		env.incref()
		q.inbox <- env
	}
	env.release()
}

// leakedRef increfs with no adjacent enqueue: nothing will ever release
// the extra reference and the buffer never returns to the pool.
func (q *queue) leakedRef(env *batchEnv) {
	env.incref() // want "incref of env with no adjacent enqueue"
	if len(env.s) == 0 {
		return
	}
}

// recycleTwice is the PR 9 bug shape: a refactor left two release calls
// on the same path, so the envelope recycles while the enqueued consumer
// can still see it.
func (q *queue) recycleTwice(env *batchEnv) {
	env.incref()
	q.local = append(q.local, env)
	env.release()
	env.release() // want "envelope env released twice on this path"
}

// touchAfterFree touches the buffer after dropping the reference that
// kept it alive.
func (q *queue) touchAfterFree(env *batchEnv) {
	env.release()
	_ = len(env.s) // want "envelope env used after release"
}

// reassignedIsFresh shows the path-sensitivity boundary: rebinding the
// variable to a fresh envelope clears the released state.
func (q *queue) reassignedIsFresh(env *batchEnv, next *batchEnv) {
	env.release()
	env = next
	_ = len(env.s)
	_ = env
}
