// Package hotalloc fixtures the hotalloc analyzer: allocating constructs
// inside //megalint:hotpath functions are flagged; the same constructs in
// unannotated functions are not.
package hotalloc

import "fmt"

type message struct {
	time int
	data any
}

type worker struct {
	local   []message
	scratch []byte
	sink    any
}

// notHot allocates freely: unannotated functions are out of scope.
func notHot() []int {
	s := make([]int, 8)
	_ = fmt.Sprintf("%d", len(s))
	return append(s, 1)
}

// send is the clean hot-path shape: struct value literals, same-target
// append, pointer boxing, and explicit buffer reuse are all allocation-free.
//
//megalint:hotpath
func (w *worker) send(t int, data any) {
	m := message{time: t, data: data}
	w.local = append(w.local, m)          // amortized growth of a retained buffer
	w.scratch = append(w.scratch[:0], 42) // explicit reuse
	w.sink = w                            // boxing a pointer fits the data word
	if t < 0 {
		panic(fmt.Sprintf("bad time %d", t)) // failure branches may allocate
	}
}

//megalint:hotpath
func (w *worker) hotFmt(t int) {
	_ = fmt.Sprintf("%d", t) // want "call to fmt.Sprintf allocates"
}

//megalint:hotpath
func (w *worker) hotClosure(t int) {
	f := func() int { return t } // want "closure literal allocates"
	_ = f
}

//megalint:hotpath
func (w *worker) hotMakeNew() {
	_ = make([]int, 4) // want "make allocates"
	_ = new(message)   // want "new allocates"
	_ = &message{}     // want "&composite literal allocates"
	_ = []int{1, 2}    // want "slice literal allocates"
	_ = map[int]int{}  // want "map literal allocates"
}

//megalint:hotpath
func (w *worker) hotAppend(extra []message) []message {
	out := append(w.local, extra...) // want "append result is not assigned back to w.local"
	return out
}

// hotUnbox: comma-ok assertions and multi-value calls yield values that
// were boxed elsewhere — extraction is free.
//
//megalint:hotpath
func (w *worker) hotUnbox(data any) int {
	m, ok := data.(message)
	if !ok {
		return 0
	}
	return m.time
}

// hotEncode is the encoder buffer-threading idiom: appending to a
// parameter and returning the result leaves the reuse assignment to the
// caller, so it is exempt; binding it to a fresh local is not.
//
//megalint:hotpath
func hotEncode(buf []byte, b byte) []byte {
	return append(buf, b)
}

//megalint:hotpath
func hotEncodeLeak(buf []byte, b byte) []byte {
	out := append(buf, b) // want "append result is not assigned back to buf"
	return out
}

//megalint:hotpath
func (w *worker) hotBox(t int, m message) {
	w.sink = t // want "boxing int into any allocates"
	consume(m) // want "boxing hotalloc.message into any allocates"
}

//megalint:hotpath
func (w *worker) hotString(name string, raw []byte) {
	_ = name + "!"   // want "string concatenation allocates"
	_ = string(raw)  // want "conversion to string allocates"
	_ = []byte(name) // want "conversion from string allocates"
}

// hotAllowed shows the suppression contract: a justified allow silences
// the line below it (misuse of the directive itself is covered by
// TestAllowMisuse against the allowmisuse fixture).
//
//megalint:hotpath
func (w *worker) hotAllowed() {
	//megalint:allow hotalloc pool miss: one-time slow path, measured cold
	w.scratch = make([]byte, 0, 64)
}

func consume(v any) { _ = v }
