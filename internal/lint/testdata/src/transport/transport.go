// Package transport is a fixture stand-in for internal/transport: the
// sendunderlock analyzer recognizes Send-family methods on types declared
// in a package named transport.
package transport

type Transport struct{}

func (t *Transport) Send(to int, kind byte, payload []byte)           {}
func (t *Transport) SendKeyed(to, key int, kind byte, payload []byte) {}
