// Package pointstamp fixtures the pointstamp analyzer with a miniature of
// the dataflow progress protocol: Batch.Add(EdgeLocation(...), t, +1)
// promises the tracker a message that a later -1 will cancel. The
// prEightBug function reproduces PR 8's wedged-frontier bug: recording the
// edge pointstamp for a destination slot that may be retired, with no
// Retired() guard — the transport drops the frame but the +1 stands
// forever.
package pointstamp

type (
	Location int
	Edge     int
	Time     int
)

type Batch struct{ n int }

func (b *Batch) Add(loc Location, t Time, delta int) { b.n += delta }

type Tracker struct{}

func (tr *Tracker) EdgeLocation(e Edge) Location { return Location(e) }
func (tr *Tracker) CapLocation(p int) Location   { return Location(p) }

type Mesh struct{}

func (m *Mesh) Retired(p int) bool { return false }

type message struct {
	edge Edge
	time Time
}

type outMsg struct {
	peer int
	msg  message
}

type ctx struct {
	batch   Batch
	tracker *Tracker
	mesh    *Mesh
	local   []message
	remote  []outMsg
	holds   []Time
}

// goodSend is the fixed OpCtx.Send shape: the local enqueue needs no
// guard, the remote record-and-enqueue is dominated by a Retired() check.
func (c *ctx) goodSend(edge Edge, t Time, peers []int, self int) {
	for _, peer := range peers {
		m := message{edge: edge, time: t}
		if peer == self {
			c.batch.Add(c.tracker.EdgeLocation(edge), t, 1)
			c.local = append(c.local, m)
		} else if c.mesh == nil || !c.mesh.Retired(peer) {
			c.batch.Add(c.tracker.EdgeLocation(edge), t, 1)
			c.remote = append(c.remote, outMsg{peer: peer, msg: m})
		}
	}
}

// prEightBug un-fixes the guard: the remote enqueue records its +1
// unconditionally, so a send to a retired slot wedges the frontier at t.
func (c *ctx) prEightBug(edge Edge, t Time, peer int) {
	m := message{edge: edge, time: t}
	c.batch.Add(c.tracker.EdgeLocation(edge), t, 1) // want "without a Retired\\(\\) guard"
	c.remote = append(c.remote, outMsg{peer: peer, msg: m})
}

// unpaired records a pointstamp nothing ever delivers: the +1 can never
// cancel.
func (c *ctx) unpaired(edge Edge, t Time, drop bool) {
	c.batch.Add(c.tracker.EdgeLocation(edge), t, 1) // want "no reachable delivery"
	if drop {
		return
	}
}

// hold records a capability, not an edge promise: CapLocation records
// retire through the hold table and are out of scope.
func (c *ctx) hold(o int, t Time) {
	c.batch.Add(c.tracker.CapLocation(o), t, 1)
	c.holds[o] = t
}

type router struct{ inbox chan message }

// deliverLocal pairs the record with a channel send: a valid delivery.
func (c *ctx) deliverLocal(r *router, edge Edge, t Time) {
	c.batch.Add(c.tracker.EdgeLocation(edge), t, 1)
	r.inbox <- message{edge: edge, time: t}
}
