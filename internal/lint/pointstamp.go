package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// Pointstamp checks that recorded pointstamps are retirable. A call to
// Batch.Add with a positive delta promises the progress tracker that a
// message or capability will later cancel it with a matching negative
// delta; a +1 whose message is then dropped wedges the frontier at that
// timestamp forever — exactly PR 8's retired-slot bug, where OpCtx.Send
// recorded the edge pointstamp for a destination the transport was going
// to discard. Two rules:
//
//   - pairing: a positive Batch.Add must be followed, in the same
//     statement list before control leaves it, by the delivery it
//     accounts for — a queue append, a channel send, an enqueue/deliver
//     call, or a hold-table assignment. A bare +1 with no adjacent
//     delivery is an unretirable promise.
//
//   - retired-guard: when the adjacent delivery is a remote enqueue (the
//     append target's name contains "remote"), the statement must be
//     dominated by a condition consulting Retired(...): remote slots
//     retire on membership changes, and an unguarded record-and-enqueue
//     re-creates the PR 8 wedge the moment a migration straddles a death.
//
// The receiver type must be named Batch (the progress package's delta
// batch), and only *edge* records — a location argument containing an
// EdgeLocation(...) call — are message promises subject to the rules;
// capability records (CapLocation: holds, inventory rebuilds) retire
// through the hold table instead. Fixtures model the types with local
// shapes of the same names.
var Pointstamp = &Analyzer{
	Name: "pointstamp",
	Doc:  "recorded pointstamps must have a reachable delivery, and remote records a Retired() guard",
	Run:  runPointstamp,
}

func runPointstamp(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var stack []ast.Node
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if n == nil {
					stack = stack[:len(stack)-1]
					return true
				}
				stack = append(stack, n)
				switch n := n.(type) {
				case *ast.BlockStmt:
					checkStampList(pass, n.List, stack)
				case *ast.CaseClause:
					checkStampList(pass, n.Body, stack)
				case *ast.CommClause:
					checkStampList(pass, n.Body, stack)
				}
				return true
			})
		}
	}
	return nil
}

// isPositiveBatchAdd reports whether stmt is `<batch>.Add(loc, t, +n)` on a
// type named Batch with a constant positive final argument.
func isPositiveBatchAdd(pass *Pass, stmt ast.Stmt) (*ast.CallExpr, bool) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return nil, false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) != 3 {
		return nil, false
	}
	fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || fun.Sel.Name != "Add" {
		return nil, false
	}
	obj, ok := pass.Info.Uses[fun.Sel].(*types.Func)
	if !ok {
		return nil, false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Name() != "Batch" {
		return nil, false
	}
	tv, ok := pass.Info.Types[call.Args[2]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return nil, false
	}
	v, ok := constant.Int64Val(tv.Value)
	if !ok || v <= 0 {
		return nil, false
	}
	// Only edge pointstamps are message promises needing a delivery; a
	// capability record (CapLocation — holds, inventory rebuilds) is
	// retired through the hold table, not a queue. Edge records are
	// recognized by an EdgeLocation call in the location argument.
	edgeLoc := false
	ast.Inspect(call.Args[0], func(m ast.Node) bool {
		if c, ok := m.(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "EdgeLocation" {
				edgeLoc = true
				return false
			}
		}
		return true
	})
	return call, edgeLoc
}

// delivery classifies a statement as the consumption that retires a
// recorded pointstamp. Returns the append target's rendered name for
// remote-guard checking ("" when not an append).
func delivery(stmt ast.Stmt) (ok bool, appendTarget string) {
	switch s := stmt.(type) {
	case *ast.SendStmt:
		return true, ""
	case *ast.AssignStmt:
		for i, rhs := range s.Rhs {
			if call, okc := ast.Unparen(rhs).(*ast.CallExpr); okc {
				if id, oki := ast.Unparen(call.Fun).(*ast.Ident); oki && id.Name == "append" && i < len(s.Lhs) {
					return true, types.ExprString(s.Lhs[i])
				}
			}
		}
		// A plain assignment counts as delivery only when it updates a
		// hold table (capability bookkeeping, e.g. op.holds[o] = t).
		for _, lhs := range s.Lhs {
			if strings.Contains(strings.ToLower(types.ExprString(lhs)), "hold") {
				return true, ""
			}
		}
		return false, ""
	case *ast.ExprStmt:
		if call, okc := s.X.(*ast.CallExpr); okc {
			name := ""
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				name = fun.Name
			case *ast.SelectorExpr:
				name = fun.Sel.Name
			}
			lower := strings.ToLower(name)
			if strings.Contains(lower, "enqueue") || strings.Contains(lower, "deliver") || strings.Contains(lower, "send") {
				return true, ""
			}
		}
	}
	return false, ""
}

// exitsList reports whether stmt transfers control out of the statement
// list before any later statement runs.
func exitsList(stmt ast.Stmt) bool {
	switch stmt.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	}
	return false
}

func checkStampList(pass *Pass, list []ast.Stmt, stack []ast.Node) {
	for i, stmt := range list {
		call, ok := isPositiveBatchAdd(pass, stmt)
		if !ok {
			continue
		}
		found := false
		for j := i + 1; j < len(list); j++ {
			ok, target := delivery(list[j])
			if ok {
				found = true
				if strings.Contains(strings.ToLower(target), "remote") && !retiredGuarded(pass, stack) {
					pass.Reportf(call.Pos(), "pointstamp recorded for a remote enqueue without a Retired() guard: a send to a retired slot records an uncancellable +1 and wedges the frontier")
				}
				break
			}
			if exitsList(list[j]) {
				break
			}
		}
		if !found {
			pass.Reportf(call.Pos(), "recorded pointstamp has no reachable delivery in this block: an unconsumed +1 wedges the frontier at its timestamp")
		}
	}
}

// retiredGuarded reports whether any enclosing if/else-if condition on the
// current traversal path consults a method named Retired.
func retiredGuarded(pass *Pass, stack []ast.Node) bool {
	for _, n := range stack {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			continue
		}
		guarded := false
		ast.Inspect(ifs.Cond, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Retired" {
					guarded = true
					return false
				}
			}
			return true
		})
		if guarded {
			return true
		}
	}
	return false
}
