package lint

import (
	"go/ast"
	"go/types"
)

// AtomicField enforces all-or-nothing atomicity per struct field: a field
// that is ever accessed through a sync/atomic function (atomic.LoadUint64,
// atomic.AddInt64, ...) must be accessed that way everywhere in the
// package. A single plain read racing the atomic writers is undefined
// behavior the race detector only catches on the schedules it happens to
// see; this proves the absence of the mixed-access class outright (the
// runtime's LoadMeter cells, tracker version/live counters, and mesh
// retired flags all migrated to typed atomics for exactly this reason —
// the analyzer keeps function-style stragglers from creeping back in).
//
// Composite-literal field keys are exempt: initialization completes before
// the value is shared. Intentional non-atomic access (a single-writer
// fast path reading its own cell) must carry
// //megalint:allow atomicfield <justification>.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "a field accessed via sync/atomic anywhere must be accessed atomically everywhere",
	Run:  runAtomicField,
}

func runAtomicField(pass *Pass) error {
	// Pass 1: find fields whose address is taken as the pointer argument of
	// a sync/atomic call, and remember those argument expressions.
	atomicFields := map[types.Object]bool{}
	atomicArgs := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pass.Info.Uses[fun.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if s := pass.Info.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
					atomicFields[s.Obj()] = true
					atomicArgs[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: every other access to those fields must be atomic. Composite
	// literal keys need no exemption: they are plain identifiers, and only
	// selector accesses are considered.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicArgs[sel] {
				return true
			}
			s := pass.Info.Selections[sel]
			if s == nil || s.Kind() != types.FieldVal || !atomicFields[s.Obj()] {
				return true
			}
			pass.Reportf(sel.Pos(), "field %s is accessed with sync/atomic elsewhere; this plain access races the atomic users", s.Obj().Name())
			return true
		})
	}
	return nil
}
