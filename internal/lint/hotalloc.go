package lint

import (
	"go/ast"
	"go/types"
)

// HotAlloc proves //megalint:hotpath functions free of allocating
// constructs: the static twin of the allocs/op benchmark pins
// (TestExchangePathAllocsPerRecord, TestBatchedSendRecvAllocsPerFrame).
// A hot function may not:
//
//   - call into package fmt (formatting allocates, always)
//   - contain a closure literal (captures escape)
//   - call make or new, or take the address of a composite literal
//   - build a map or slice literal
//   - append without reusing its argument: append(x, ...) must be
//     assigned back to x (amortized growth of a retained buffer), take an
//     explicit re-slice append(x[:0], ...) (buffer reuse), or extend a
//     function parameter directly in a return statement (the encoder
//     idiom `return append(buf, ...)`, where the caller owns the
//     assignment); a result bound to a fresh variable grows an unretained
//     buffer every call
//   - box a non-pointer-shaped value into an interface (the per-batch
//     interface-box allocation PR 2 eliminated from the exchange path)
//   - concatenate strings or convert between string and []byte/[]rune
//
// Arguments to panic() are exempt: a hot path's failure branch is allowed
// to allocate while crashing. Cold sub-paths inside a hot function (pool
// misses, one-time registrations, fatal-error reporting) are suppressed
// explicitly with //megalint:allow hotalloc <justification> so every
// exception is visible and justified in the source.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flag allocating constructs in //megalint:hotpath functions",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !Hotpath(fd) {
				continue
			}
			checkHotBody(pass, fd)
		}
	}
	return nil
}

func checkHotBody(pass *Pass, fd *ast.FuncDecl) {
	params := map[types.Object]bool{}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				params[pass.Info.Defs[name]] = true
			}
		}
	}
	// First pass: map append calls to the expression their result is
	// assigned to, so the reuse idiom x = append(x, ...) is recognizable
	// when the call itself is visited. `return append(param, ...)` is the
	// same idiom with the assignment on the caller's side, so it maps the
	// call to its own first argument.
	appendTarget := map[*ast.CallExpr]ast.Expr{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
					if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && pass.Info.Uses[id] == types.Universe.Lookup("append") {
						appendTarget[call] = n.Lhs[i]
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				call, ok := ast.Unparen(res).(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					continue
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || pass.Info.Uses[id] != types.Universe.Lookup("append") {
					continue
				}
				if arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && params[pass.Info.Uses[arg]] {
					appendTarget[call] = call.Args[0]
				}
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPanic(pass, n) {
				return false // failure branches may allocate while crashing
			}
			checkHotCall(pass, n, appendTarget)
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "hot path: closure literal allocates")
			return false
		case *ast.CompositeLit:
			t := pass.Info.Types[n].Type
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					pass.Reportf(n.Pos(), "hot path: map literal allocates")
				case *types.Slice:
					pass.Reportf(n.Pos(), "hot path: slice literal allocates")
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "hot path: &composite literal allocates")
					return false
				}
			}
		case *ast.BinaryExpr:
			if n.Op.String() == "+" && isString(pass.Info.Types[n.X].Type) {
				pass.Reportf(n.Pos(), "hot path: string concatenation allocates")
			}
		case *ast.AssignStmt:
			checkHotAssign(pass, n)
		case *ast.ReturnStmt:
			checkHotReturn(pass, fd, n)
		}
		return true
	})
}

// checkHotCall flags allocating builtins, fmt calls, allocating
// conversions, and interface boxing in call arguments.
func checkHotCall(pass *Pass, call *ast.CallExpr, appendTarget map[*ast.CallExpr]ast.Expr) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch pass.Info.Uses[fun] {
		case types.Universe.Lookup("make"):
			pass.Reportf(call.Pos(), "hot path: make allocates")
			return
		case types.Universe.Lookup("new"):
			pass.Reportf(call.Pos(), "hot path: new allocates")
			return
		case types.Universe.Lookup("append"):
			checkHotAppend(pass, call, appendTarget)
			return
		}
	case *ast.SelectorExpr:
		if obj, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			pass.Reportf(call.Pos(), "hot path: call to fmt.%s allocates", obj.Name())
			return
		}
	}

	// Conversion T(x): string<->[]byte/[]rune copies; conversion to an
	// interface type boxes.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, pass.Info.Types[call.Args[0]].Type
		switch {
		case isString(to) && !isString(from.Underlying()):
			pass.Reportf(call.Pos(), "hot path: conversion to string allocates")
		case !isString(to.Underlying()) && isString(from) && !types.IsInterface(to):
			pass.Reportf(call.Pos(), "hot path: conversion from string allocates")
		case types.IsInterface(to):
			checkBox(pass, call.Args[0], to)
		}
		return
	}

	// Interface boxing at argument positions.
	sig, _ := pass.Info.Types[call.Fun].Type.(*types.Signature)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		if sig.Variadic() && i >= sig.Params().Len()-1 {
			if call.Ellipsis.IsValid() {
				continue // forwarding an existing slice, no boxing
			}
			param = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		} else if i < sig.Params().Len() {
			param = sig.Params().At(i).Type()
		}
		if param != nil && types.IsInterface(param) {
			checkBox(pass, arg, param)
		}
	}
}

// checkHotAppend enforces the reuse idiom: append must either take an
// explicit re-slice of its destination or be assigned back to the same
// expression it extends.
func checkHotAppend(pass *Pass, call *ast.CallExpr, appendTarget map[*ast.CallExpr]ast.Expr) {
	if len(call.Args) == 0 {
		return
	}
	if _, ok := ast.Unparen(call.Args[0]).(*ast.SliceExpr); ok {
		return // append(x[:0], ...): explicit buffer reuse
	}
	if parent, ok := appendTarget[call]; ok && types.ExprString(parent) == types.ExprString(call.Args[0]) {
		return // x = append(x, ...): amortized growth of a retained buffer
	}
	pass.Reportf(call.Pos(), "hot path: append result is not assigned back to %s (unretained buffer growth)", types.ExprString(call.Args[0]))
}

func checkHotAssign(pass *Pass, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) {
			break
		}
		// Boxing on assignment to an interface-typed location.
		lt := pass.Info.Types[as.Lhs[i]].Type
		if lt == nil {
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := pass.Info.Defs[id]; obj != nil {
					lt = obj.Type()
				}
			}
		}
		if lt != nil && types.IsInterface(lt) {
			checkBox(pass, rhs, lt)
		}
	}
}

func checkHotReturn(pass *Pass, fd *ast.FuncDecl, ret *ast.ReturnStmt) {
	if fd.Type.Results == nil {
		return
	}
	var results []types.Type
	for _, field := range fd.Type.Results.List {
		t := pass.Info.Types[field.Type].Type
		n := max(len(field.Names), 1)
		for range n {
			results = append(results, t)
		}
	}
	for i, e := range ret.Results {
		if i < len(results) && results[i] != nil && types.IsInterface(results[i]) {
			checkBox(pass, e, results[i])
		}
	}
}

// checkBox reports expr if storing it into target boxes a non-pointer-shaped
// value into an interface. Pointer-shaped values (pointers, channels, maps,
// funcs, unsafe.Pointer) fit the interface data word; everything else —
// ints, strings, structs, slices — escapes to the heap.
func checkBox(pass *Pass, expr ast.Expr, target types.Type) {
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	from := tv.Type
	if types.IsInterface(from) {
		return // interface-to-interface copies the existing box
	}
	if _, ok := from.(*types.Tuple); ok {
		// Comma-ok assertions and multi-value calls: the interface values
		// they yield were boxed elsewhere (or extracted, not boxed).
		return
	}
	if tv.IsNil() {
		return
	}
	switch from.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return
	}
	if b, ok := from.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return
	}
	pass.Reportf(expr.Pos(), "hot path: boxing %s into %s allocates", from, target)
}

func isPanic(pass *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && pass.Info.Uses[id] == types.Universe.Lookup("panic")
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
