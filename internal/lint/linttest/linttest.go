// Package linttest runs megalint analyzers against golden-file fixture
// packages, mirroring golang.org/x/tools/go/analysis/analysistest: fixture
// sources live under testdata/src/<importpath>/, and every line expected to
// produce a diagnostic carries a trailing comment of the form
//
//	// want "regexp"
//
// (multiple quoted regexps when one line yields several diagnostics).
// Diagnostics with no matching want, and wants with no matching
// diagnostic, fail the test.
package linttest

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"megaphone/internal/lint"
)

// Run loads each fixture package and checks the analyzer's diagnostics
// against the // want comments in its sources.
func Run(t *testing.T, testdata string, a *lint.Analyzer, paths ...string) {
	t.Helper()
	for _, path := range paths {
		pkg, err := lint.LoadFixture(testdata, path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		diags := lint.Run(pkg, []*lint.Analyzer{a})
		checkWants(t, pkg, path, diags)
	}
}

// want is one expectation: a regexp anchored to a file line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

func checkWants(t *testing.T, pkg *lint.Package, path string, diags []lint.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		fname := pkg.Fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				wants = append(wants, parseWants(t, fname, pkg.Fset, c)...)
			}
		}
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic at %s:%d: [%s] %s", path, pos.Filename, pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: expected diagnostic matching %q at %s:%d, got none", path, w.raw, w.file, w.line)
		}
	}
}

// parseWants extracts the quoted regexps of one // want comment.
func parseWants(t *testing.T, fname string, fset *token.FileSet, c *ast.Comment) []*want {
	t.Helper()
	text := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(c.Text), "//"))
	rest, ok := strings.CutPrefix(strings.TrimSpace(text), "want ")
	if !ok {
		return nil
	}
	line := fset.Position(c.Pos()).Line
	var out []*want
	rest = strings.TrimSpace(rest)
	for rest != "" {
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			t.Fatalf("%s:%d: malformed want comment %q: %v", fname, line, c.Text, err)
		}
		raw, err := strconv.Unquote(q)
		if err != nil {
			t.Fatalf("%s:%d: malformed want pattern %q: %v", fname, line, q, err)
		}
		re, err := regexp.Compile(raw)
		if err != nil {
			t.Fatalf("%s:%d: bad want regexp %q: %v", fname, line, raw, err)
		}
		out = append(out, &want{file: fname, line: line, re: re, raw: raw})
		rest = strings.TrimSpace(rest[len(q):])
	}
	return out
}
