// Package leakcheck fails a test binary whose goroutines outlive its
// tests. The runtime packages spawn goroutines aggressively — transport
// receive loops per connection generation, worker event loops, control
// planes — and every one of them is supposed to be joined by a Close or
// Wait before the test that started it returns. A goroutine that survives
// m.Run is a shutdown-path bug: in production the same goroutine would
// outlive a drained worker or a closed transport and pin its buffers
// forever.
//
// Usage, from a TestMain:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
//
// Main runs the tests and then polls the goroutine inventory until it
// drains or a deadline passes, so goroutines legitimately mid-teardown
// (a recvLoop observing its closed connection, a worker unwinding after
// Wait returned) get a grace period rather than a false positive. Stacks
// from the runtime, the testing framework, and leakcheck itself are
// filtered; anything else that remains after the deadline is reported
// with its full stack and fails the binary.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// Main wraps m.Run with a post-run leak check. It never returns.
func Main(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if err := Check(5 * time.Second); err != nil {
			fmt.Fprintf(os.Stderr, "leakcheck: %v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}

// Check polls until no unexpected goroutines remain or the deadline
// passes, returning an error listing the survivors' stacks. Exported so
// tests of teardown paths can assert quiescence mid-binary.
func Check(deadline time.Duration) error {
	var leaked []string
	delay := 1 * time.Millisecond
	stop := time.Now().Add(deadline)
	for {
		leaked = interesting(stacks())
		if len(leaked) == 0 {
			return nil
		}
		if time.Now().After(stop) {
			break
		}
		time.Sleep(delay)
		if delay < 100*time.Millisecond {
			delay *= 2
		}
	}
	return fmt.Errorf("%d leaked goroutine(s) after %v:\n\n%s",
		len(leaked), deadline, strings.Join(leaked, "\n\n"))
}

// stacks captures all goroutine stacks, growing the buffer until the dump
// fits.
func stacks() string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return string(buf[:n])
		}
		buf = make([]byte, 2*len(buf))
	}
}

// ignorePrefixes match goroutine states that are never leaks.
var ignoreStates = []string{
	"[running]",  // includes the goroutine running the check itself
	"[runnable]", // scheduled but not yet started; state not yet meaningful
}

// ignoreFrames match stack content belonging to the runtime, the testing
// framework, or this package.
var ignoreFrames = []string{
	"testing.Main(",
	"testing.tRunner(",
	"testing.(*M).",
	"testing.runTests(",
	"testing.runFuzzTests(",
	"testing.runBenchmarks(",
	"created by runtime",
	"runtime.goexit0",
	"runtime.gc",
	"runtime.ReadTrace",
	"runtime.ensureSigM",
	"os/signal.signal_recv",
	"os/signal.loop",
	"leakcheck.Main",
	"leakcheck.Check",
}

// interesting splits a full runtime.Stack dump into per-goroutine blocks
// and returns those not covered by the ignore lists.
func interesting(dump string) []string {
	var out []string
	for _, g := range strings.Split(dump, "\n\n") {
		g = strings.TrimSpace(g)
		if g == "" || !strings.HasPrefix(g, "goroutine ") {
			continue
		}
		header, _, _ := strings.Cut(g, "\n")
		skip := false
		for _, s := range ignoreStates {
			if strings.Contains(header, s) {
				skip = true
				break
			}
		}
		for _, f := range ignoreFrames {
			if skip {
				break
			}
			if strings.Contains(g, f) {
				skip = true
			}
		}
		if !skip {
			out = append(out, g)
		}
	}
	return out
}
