package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// TestCheckCleanPasses: a quiescent binary has nothing to report.
func TestCheckCleanPasses(t *testing.T) {
	if err := Check(2 * time.Second); err != nil {
		t.Fatalf("clean state reported a leak: %v", err)
	}
}

// TestCheckCatchesLeak: a goroutine parked past the deadline is reported
// with its stack, and is no longer reported once released.
func TestCheckCatchesLeak(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-block
	}()
	<-started
	err := Check(50 * time.Millisecond)
	if err == nil {
		close(block)
		t.Fatal("parked goroutine was not reported")
	}
	if !strings.Contains(err.Error(), "TestCheckCatchesLeak") {
		t.Errorf("report does not name the leaking test:\n%v", err)
	}
	close(block)
	if err := Check(2 * time.Second); err != nil {
		t.Fatalf("released goroutine still reported: %v", err)
	}
}

// TestCheckGracePeriod: a goroutine mid-teardown that exits within the
// deadline is not a leak.
func TestCheckGracePeriod(t *testing.T) {
	done := make(chan struct{})
	go func() {
		time.Sleep(30 * time.Millisecond)
		close(done)
	}()
	if err := Check(2 * time.Second); err != nil {
		t.Fatalf("goroutine exiting within the grace period reported: %v", err)
	}
	<-done
}

func TestMain(m *testing.M) { Main(m) }
