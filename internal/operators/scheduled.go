package operators

import (
	"container/heap"

	"megaphone/internal/dataflow"
)

// UnaryScheduled is UnaryNotify plus timely's Notificator: the logic can
// request a callback at a future timestamp (e.g. a window boundary or an
// auction's expiry). f runs once per completed time, with that time's data
// (possibly empty, when only a scheduled notification fired) and a schedule
// function valid during the call.
//
// This is the native building block for windowed NEXMark queries; unlike
// Megaphone's notificator, the scheduled times and the state they refer to
// are invisible to the system and cannot migrate.
func UnaryScheduled[A, B, S any](
	w *dataflow.Worker,
	name string,
	s dataflow.Stream[A],
	pact dataflow.Pact[A],
	newState func() S,
	f func(t Time, data []A, state S, schedule func(Time), emit func(B)),
) dataflow.Stream[B] {
	state := newState()
	pending := make(map[Time][]A)
	var times timeHeap          // times with pending data
	var scheduled timeHeap      // requested notification times
	schedSet := map[Time]bool{} // dedup for scheduled

	b := w.NewOp(name, 1)
	dataflow.Connect(b, s, pact)
	outs := b.Build(func(c *dataflow.OpCtx) {
		dataflow.ForEachBatch(c, 0, func(t Time, data []A) {
			if _, ok := pending[t]; !ok {
				heap.Push(&times, t)
			}
			pending[t] = append(pending[t], data...)
		})
		frontier := c.Frontier(0)
		for {
			t := dataflow.None
			if len(times) > 0 {
				t = times[0]
			}
			if len(scheduled) > 0 && scheduled[0] < t {
				t = scheduled[0]
			}
			if t >= frontier {
				break
			}
			if len(times) > 0 && times[0] == t {
				heap.Pop(&times)
			}
			if len(scheduled) > 0 && scheduled[0] == t {
				heap.Pop(&scheduled)
				delete(schedSet, t)
			}
			data := pending[t]
			delete(pending, t)
			var out []B
			sched := func(at Time) {
				if at <= t {
					panic("operators: schedule not after current time")
				}
				if !schedSet[at] {
					schedSet[at] = true
					heap.Push(&scheduled, at)
				}
			}
			f(t, data, state, sched, func(r B) { out = append(out, r) })
			dataflow.SendBatch(c, 0, t, out)
		}
		holdAt := dataflow.None
		if len(times) > 0 {
			holdAt = times[0]
		}
		if len(scheduled) > 0 && scheduled[0] < holdAt {
			holdAt = scheduled[0]
		}
		if holdAt != dataflow.None {
			c.Hold(0, holdAt)
		} else {
			c.DropHold(0)
		}
	})
	return dataflow.Typed[B](outs[0])
}
