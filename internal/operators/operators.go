// Package operators provides the standard library of native timely-style
// operators: stateless record-at-a-time transforms and frontier-driven
// stateful operators. These are the "native" implementations the paper's
// evaluation compares Megaphone against; they cannot migrate their state.
package operators

import (
	"megaphone/internal/dataflow"
)

// Time aliases the runtime's logical timestamp.
type Time = dataflow.Time

// Map applies f to every record.
func Map[A, B any](w *dataflow.Worker, name string, s dataflow.Stream[A], f func(A) B) dataflow.Stream[B] {
	b := w.NewOp(name, 1)
	dataflow.Connect(b, s, dataflow.Pipeline[A]{})
	outs := b.Build(func(c *dataflow.OpCtx) {
		dataflow.ForEachBatch(c, 0, func(t Time, data []A) {
			out := make([]B, len(data))
			for i, r := range data {
				out[i] = f(r)
			}
			dataflow.SendBatch(c, 0, t, out)
		})
	})
	return dataflow.Typed[B](outs[0])
}

// Filter keeps records satisfying pred.
func Filter[A any](w *dataflow.Worker, name string, s dataflow.Stream[A], pred func(A) bool) dataflow.Stream[A] {
	b := w.NewOp(name, 1)
	dataflow.Connect(b, s, dataflow.Pipeline[A]{})
	outs := b.Build(func(c *dataflow.OpCtx) {
		dataflow.ForEachBatch(c, 0, func(t Time, data []A) {
			var out []A
			for _, r := range data {
				if pred(r) {
					out = append(out, r)
				}
			}
			dataflow.SendBatch(c, 0, t, out)
		})
	})
	return dataflow.Typed[A](outs[0])
}

// FlatMap applies f to every record and flattens the results.
func FlatMap[A, B any](w *dataflow.Worker, name string, s dataflow.Stream[A], f func(A) []B) dataflow.Stream[B] {
	b := w.NewOp(name, 1)
	dataflow.Connect(b, s, dataflow.Pipeline[A]{})
	outs := b.Build(func(c *dataflow.OpCtx) {
		dataflow.ForEachBatch(c, 0, func(t Time, data []A) {
			var out []B
			for _, r := range data {
				out = append(out, f(r)...)
			}
			dataflow.SendBatch(c, 0, t, out)
		})
	})
	return dataflow.Typed[B](outs[0])
}

// Inspect invokes f on every record (with its time) and forwards the stream
// unchanged.
func Inspect[A any](w *dataflow.Worker, name string, s dataflow.Stream[A], f func(Time, A)) dataflow.Stream[A] {
	b := w.NewOp(name, 1)
	dataflow.Connect(b, s, dataflow.Pipeline[A]{})
	outs := b.Build(func(c *dataflow.OpCtx) {
		dataflow.ForEachBatch(c, 0, func(t Time, data []A) {
			for _, r := range data {
				f(t, r)
			}
			dataflow.SendBatch(c, 0, t, data)
		})
	})
	return dataflow.Typed[A](outs[0])
}

// Concat merges two streams of the same type.
func Concat[A any](w *dataflow.Worker, name string, s1, s2 dataflow.Stream[A]) dataflow.Stream[A] {
	b := w.NewOp(name, 1)
	dataflow.Connect(b, s1, dataflow.Pipeline[A]{})
	dataflow.Connect(b, s2, dataflow.Pipeline[A]{})
	outs := b.Build(func(c *dataflow.OpCtx) {
		for i := 0; i < 2; i++ {
			dataflow.ForEachBatch(c, i, func(t Time, data []A) {
				dataflow.SendBatch(c, 0, t, data)
			})
		}
	})
	return dataflow.Typed[A](outs[0])
}

// ExchangeBy re-partitions a stream across workers by a hash of each record.
func ExchangeBy[A any](w *dataflow.Worker, name string, s dataflow.Stream[A], hash func(A) uint64) dataflow.Stream[A] {
	b := w.NewOp(name, 1)
	dataflow.Connect(b, s, dataflow.Exchange[A]{Hash: hash})
	outs := b.Build(func(c *dataflow.OpCtx) {
		dataflow.ForEachBatch(c, 0, func(t Time, data []A) {
			dataflow.SendBatch(c, 0, t, data)
		})
	})
	return dataflow.Typed[A](outs[0])
}

// Sink consumes a stream, invoking f per batch; it produces no output.
func Sink[A any](w *dataflow.Worker, name string, s dataflow.Stream[A], f func(Time, []A)) {
	b := w.NewOp(name, 0)
	dataflow.Connect(b, s, dataflow.Pipeline[A]{})
	b.Build(func(c *dataflow.OpCtx) {
		dataflow.ForEachBatch(c, 0, func(t Time, data []A) { f(t, data) })
	})
}
