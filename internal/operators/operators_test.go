package operators_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"megaphone/internal/dataflow"
	"megaphone/internal/operators"
)

// runSingle builds a 1-worker dataflow around a stream transform and feeds
// it ints at distinct times, returning the sink's observations.
func runSingle[T any](t *testing.T, inputs []int, build func(w *dataflow.Worker, s dataflow.Stream[int]) dataflow.Stream[T]) []T {
	t.Helper()
	var mu sync.Mutex
	var got []T
	exec := dataflow.NewExecution(dataflow.Config{Workers: 1})
	var in *dataflow.InputHandle[int]
	exec.Build(func(w *dataflow.Worker) {
		h, s := dataflow.NewInput[int](w, "in")
		in = h
		out := build(w, s)
		operators.Sink(w, "sink", out, func(_ dataflow.Time, data []T) {
			mu.Lock()
			got = append(got, data...)
			mu.Unlock()
		})
	})
	exec.Start()
	for i, v := range inputs {
		in.SendAt(dataflow.Time(i+1), v)
		in.AdvanceTo(dataflow.Time(i + 2))
	}
	in.Close()
	exec.Wait()
	return got
}

func TestMap(t *testing.T) {
	got := runSingle(t, []int{1, 2, 3}, func(w *dataflow.Worker, s dataflow.Stream[int]) dataflow.Stream[int] {
		return operators.Map(w, "double", s, func(x int) int { return x * 2 })
	})
	if len(got) != 3 {
		t.Fatalf("got %d records", len(got))
	}
	sum := 0
	for _, v := range got {
		sum += v
	}
	if sum != 12 {
		t.Errorf("sum = %d, want 12", sum)
	}
}

func TestFilter(t *testing.T) {
	got := runSingle(t, []int{1, 2, 3, 4, 5, 6}, func(w *dataflow.Worker, s dataflow.Stream[int]) dataflow.Stream[int] {
		return operators.Filter(w, "even", s, func(x int) bool { return x%2 == 0 })
	})
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestFlatMap(t *testing.T) {
	got := runSingle(t, []int{1, 2}, func(w *dataflow.Worker, s dataflow.Stream[int]) dataflow.Stream[int] {
		return operators.FlatMap(w, "dup", s, func(x int) []int { return []int{x, x} })
	})
	if len(got) != 4 {
		t.Fatalf("got %v", got)
	}
}

func TestInspectForwards(t *testing.T) {
	var seen atomic.Int64
	got := runSingle(t, []int{7, 8}, func(w *dataflow.Worker, s dataflow.Stream[int]) dataflow.Stream[int] {
		return operators.Inspect(w, "peek", s, func(_ dataflow.Time, v int) { seen.Add(int64(v)) })
	})
	if len(got) != 2 || seen.Load() != 15 {
		t.Fatalf("got %v, seen %d", got, seen.Load())
	}
}

func TestConcat(t *testing.T) {
	var mu sync.Mutex
	var got []int
	exec := dataflow.NewExecution(dataflow.Config{Workers: 1})
	var in *dataflow.InputHandle[int]
	exec.Build(func(w *dataflow.Worker) {
		h, s := dataflow.NewInput[int](w, "in")
		in = h
		evens := operators.Filter(w, "even", s, func(x int) bool { return x%2 == 0 })
		odds := operators.Filter(w, "odd", s, func(x int) bool { return x%2 == 1 })
		both := operators.Concat(w, "concat", evens, odds)
		operators.Sink(w, "sink", both, func(_ dataflow.Time, data []int) {
			mu.Lock()
			got = append(got, data...)
			mu.Unlock()
		})
	})
	exec.Start()
	for i := 1; i <= 10; i++ {
		in.SendAt(dataflow.Time(i), i)
	}
	in.Close()
	exec.Wait()
	if len(got) != 10 {
		t.Fatalf("concat lost records: %v", got)
	}
}

// TestUnaryScheduledFiresWithoutData: a scheduled notification fires at a
// time with no input records.
func TestUnaryScheduledFiresWithoutData(t *testing.T) {
	var mu sync.Mutex
	var fired []dataflow.Time
	exec := dataflow.NewExecution(dataflow.Config{Workers: 1})
	var in *dataflow.InputHandle[int]
	exec.Build(func(w *dataflow.Worker) {
		h, s := dataflow.NewInput[int](w, "in")
		in = h
		out := operators.UnaryScheduled(w, "timer", s, dataflow.Pipeline[int]{},
			func() *int { return new(int) },
			func(tm dataflow.Time, data []int, _ *int, schedule func(dataflow.Time), emit func(int)) {
				if len(data) > 0 {
					schedule(tm + 10)
					return
				}
				mu.Lock()
				fired = append(fired, tm)
				mu.Unlock()
				emit(0)
			})
		operators.Sink(w, "sink", out, func(dataflow.Time, []int) {})
	})
	exec.Start()
	in.SendAt(5, 1)
	for e := dataflow.Time(6); e <= 20; e++ {
		in.AdvanceTo(e)
	}
	in.Close()
	exec.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(fired) != 1 || fired[0] != 15 {
		t.Fatalf("fired = %v, want [15]", fired)
	}
}

// TestStateMachinePerKeyIsolation: keys do not share state.
func TestStateMachinePerKeyIsolation(t *testing.T) {
	var mu sync.Mutex
	finals := map[string]int{}
	exec := dataflow.NewExecution(dataflow.Config{Workers: 2})
	var ins []*dataflow.InputHandle[operators.KV[string, int]]
	exec.Build(func(w *dataflow.Worker) {
		h, s := dataflow.NewInput[operators.KV[string, int]](w, "in")
		ins = append(ins, h)
		out := operators.StateMachine(w, "sum", s,
			func(k string) uint64 { return uint64(len(k)) * 2654435761 },
			func(k string, v int, st *int, emit func(operators.KV[string, int])) {
				*st += v
				emit(operators.KV[string, int]{Key: k, Val: *st})
			})
		operators.Sink(w, "sink", out, func(_ dataflow.Time, data []operators.KV[string, int]) {
			mu.Lock()
			for _, kv := range data {
				if kv.Val > finals[kv.Key] {
					finals[kv.Key] = kv.Val
				}
			}
			mu.Unlock()
		})
	})
	exec.Start()
	for i := 0; i < 90; i++ {
		k := []string{"a", "bb", "ccc"}[i%3]
		ins[i%2].SendAt(dataflow.Time(i+1), operators.KV[string, int]{Key: k, Val: 1})
	}
	for _, h := range ins {
		h.Close()
	}
	exec.Wait()
	for _, k := range []string{"a", "bb", "ccc"} {
		if finals[k] != 30 {
			t.Errorf("finals[%s] = %d, want 30", k, finals[k])
		}
	}
}
