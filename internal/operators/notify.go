package operators

import (
	"container/heap"
	"sort"

	"megaphone/internal/dataflow"
)

// timeHeap is a min-heap of logical times.
type timeHeap []Time

func (h timeHeap) Len() int           { return len(h) }
func (h timeHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h timeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *timeHeap) Push(x any)        { *h = append(*h, x.(Time)) }
func (h *timeHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h timeHeap) Peek() (Time, bool) {
	if len(h) == 0 {
		return 0, false
	}
	return h[0], true
}

// UnaryNotify builds a frontier-driven stateful operator. Incoming batches
// are buffered per timestamp; once the input frontier passes a timestamp,
// all of its records are handed to f in timestamp order together with a
// per-worker state value. This is timely's unary operator with a
// Notificator: outputs for time t are emitted only when t is complete.
//
// The state is per worker (not per key) and cannot migrate; this is the
// native baseline against which Megaphone's migratable operators are
// measured (Section 5.2 of the paper).
func UnaryNotify[A, B, S any](
	w *dataflow.Worker,
	name string,
	s dataflow.Stream[A],
	pact dataflow.Pact[A],
	newState func() S,
	f func(t Time, data []A, state S, emit func(B)),
) dataflow.Stream[B] {
	state := newState()
	pending := make(map[Time][]A)
	var times timeHeap

	b := w.NewOp(name, 1)
	dataflow.Connect(b, s, pact)
	outs := b.Build(func(c *dataflow.OpCtx) {
		dataflow.ForEachBatch(c, 0, func(t Time, data []A) {
			if _, ok := pending[t]; !ok {
				heap.Push(&times, t)
			}
			pending[t] = append(pending[t], data...)
		})
		frontier := c.Frontier(0)
		// Hold the output at the earliest incomplete buffered time so the
		// downstream frontier cannot pass work we have deferred.
		for {
			t, ok := times.Peek()
			if !ok || t >= frontier {
				break
			}
			heap.Pop(&times)
			data := pending[t]
			delete(pending, t)
			var out []B
			f(t, data, state, func(r B) { out = append(out, r) })
			dataflow.SendBatch(c, 0, t, out)
		}
		if t, ok := times.Peek(); ok {
			c.Hold(0, t)
		} else {
			c.DropHold(0)
		}
	})
	return dataflow.Typed[B](outs[0])
}

// StateMachine is a native keyed state machine: records are exchanged by a
// key hash, buffered until their time completes, and applied in timestamp
// order to per-key state held in a worker-local map. It mirrors timely's
// `state_machine` operator and is the non-migratable counterpart of
// Megaphone's StateMachine.
func StateMachine[K comparable, V, B, S any](
	w *dataflow.Worker,
	name string,
	s dataflow.Stream[KV[K, V]],
	hash func(K) uint64,
	fold func(key K, val V, state *S, emit func(B)),
) dataflow.Stream[B] {
	states := make(map[K]*S)
	return UnaryNotify(w, name, s,
		dataflow.Exchange[KV[K, V]]{Hash: func(r KV[K, V]) uint64 { return hash(r.Key) }},
		func() struct{} { return struct{}{} },
		func(t Time, data []KV[K, V], _ struct{}, emit func(B)) {
			for _, r := range data {
				st, ok := states[r.Key]
				if !ok {
					st = new(S)
					states[r.Key] = st
				}
				fold(r.Key, r.Val, st, emit)
			}
		})
}

// KV is a keyed record.
type KV[K comparable, V any] struct {
	Key K
	Val V
}

// SortBatch sorts a batch in place by the provided less function; stateful
// operators use it to make per-time application order deterministic.
func SortBatch[A any](data []A, less func(a, b A) bool) {
	sort.SliceStable(data, func(i, j int) bool { return less(data[i], data[j]) })
}
