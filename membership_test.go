// Dynamic-membership equivalence: the acceptance test of join, drain-leave
// and crash-leave on a live cluster. A 4-slot roster starts with slot 3
// absent; under continuous load the cluster admits the late joiner, survives
// an abrupt crash of process 2 (recovering only its bins from the latest
// complete checkpoint and replaying the bounded input window), and drains
// process 1 out cleanly — all without restarting the cluster. The merged
// output must be equivalent to an uninterrupted single-process run with the
// same total worker count. scripts/cluster.sh join-leave performs the same
// scenario against the real binaries with a real SIGKILL.
package megaphone_test

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"megaphone/internal/core"
	"megaphone/internal/harness"
	"megaphone/internal/keycount"
	"megaphone/internal/plan"
)

// maxCounts folds "key:count" output lines into the final (maximum) count
// per key. Counts only grow, and crash recovery re-emits every epoch from
// the checkpoint on, so at-least-once duplication is expected across a
// crash: the per-key maximum is the deterministic quantity, equal to the
// key's total number of occurrences in the input stream.
func maxCounts(t *testing.T, lines []string) map[string]uint64 {
	t.Helper()
	out := make(map[string]uint64)
	for _, line := range lines {
		i := strings.IndexByte(line, ':')
		if i < 0 {
			t.Fatalf("malformed output line %q", line)
		}
		n, err := strconv.ParseUint(line[i+1:], 10, 64)
		if err != nil {
			t.Fatalf("malformed output line %q: %v", line, err)
		}
		if n > out[line[:i]] {
			out[line[:i]] = n
		}
	}
	return out
}

func TestMembershipJoinCrashDrainEquivalence(t *testing.T) {
	const (
		procs = 4
		wpp   = 1
		// Epoch timeline: slot 3 joins at startup (committed within the
		// first ~20 epochs), checkpoints land every 200 epochs, process 2
		// crashes at 450 (recovering from the complete full-roster
		// checkpoint at 400), process 1 drain-leaves at 700, and the two
		// survivors run out the remaining epochs.
		durationEpochs  = 1000
		checkpointEvery = 200 * time.Millisecond
		crashAt         = 450
		leaveAt         = 700
	)
	base := keycount.RunConfig{
		Params: keycount.Params{
			Variant: keycount.HashCount,
			LogBins: 4,
			Domain:  1 << 10,
			Preload: false,
		},
		Rate:       20000,
		Duration:   durationEpochs * time.Millisecond,
		EpochEvery: time.Millisecond,
	}

	// Uninterrupted single-process reference with the same total worker
	// count: the membership run's merged output must match its final count
	// for every key.
	var ref collector
	refCfg := base
	refCfg.Workers = procs * wpp
	refCfg.Sink = ref.add
	refRes, err := keycount.Run(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	if refRes.Records == 0 {
		t.Fatal("reference run injected no records")
	}

	specs := localClusterSpecs(t, procs)
	absent := make([]bool, procs)
	absent[procs-1] = true
	ckptDir := t.TempDir()

	var clu collector
	var wg sync.WaitGroup
	errs := make([]error, procs)
	epochs := make([]int64, procs)
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			cfg := base
			cfg.Workers = wpp
			cfg.Cluster = &specs[p]
			cfg.Cluster.Absent = absent
			cfg.Cluster.Logf = func(format string, args ...any) {
				t.Logf("proc %d: "+format, append([]any{p}, args...)...)
			}
			cfg.Sink = clu.add
			cfg.Membership = true
			cfg.CheckpointDir = ckptDir
			cfg.CheckpointEvery = checkpointEvery
			// Four race-instrumented runtimes sharing however few cores the
			// test machine has: widen the suspicion/death/margin windows so
			// scheduling jitter cannot fake a crash or outrun a commit.
			cfg.MembershipSlack = 6
			switch p {
			case 1:
				cfg.LeaveAt = leaveAt
			case 2:
				cfg.CrashAt = crashAt
			}
			res, err := keycount.Run(cfg)
			errs[p] = err
			epochs[p] = res.Epochs
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("process %d: %v", p, err)
		}
	}

	// The crashed process abandoned mid-run — at its crash epoch, or later
	// if the first full-roster checkpoint was still completing; the drained
	// process broke out shortly after its leave commit; the survivors
	// (including the joiner) ran the full range.
	if epochs[2] == durationEpochs {
		t.Fatalf("crash victim drove the full %d epochs without abandoning", durationEpochs)
	}
	if epochs[1] < leaveAt || epochs[1] == durationEpochs {
		t.Fatalf("leaver drove epoch %d, want departure in (%d, %d)", epochs[1], leaveAt, durationEpochs)
	}
	for _, p := range []int{0, procs - 1} {
		if epochs[p] != durationEpochs {
			t.Fatalf("survivor %d stopped at epoch %d, want %d", p, epochs[p], durationEpochs)
		}
	}

	// Output equivalence under at-least-once replay: final count per key.
	want := maxCounts(t, ref.lines)
	got := maxCounts(t, clu.lines)
	var low, high int
	binsOff := map[int]int{}
	for k, w := range want {
		g := got[k]
		if g == w {
			continue
		}
		if g < w {
			low++
		} else {
			high++
		}
		key, _ := strconv.ParseUint(k, 10, 64)
		binsOff[core.BinOf(core.Mix64(key), 4)]++
		if low+high <= 5 {
			t.Errorf("key %s: final count %d, reference %d", k, g, w)
		}
	}
	if low+high > 0 {
		t.Fatalf("%d keys under reference, %d over (of %d distinct; mismatches per bin %v)",
			low, high, len(want), binsOff)
	}
	if len(got) != len(want) {
		t.Fatalf("membership run produced %d distinct keys, reference %d", len(got), len(want))
	}
}

// logCapture collects cluster log lines across processes for assertions on
// leader decisions (which process produced a line does not matter: every
// decision is logged by the leader that took it).
type logCapture struct {
	mu    sync.Mutex
	lines []string
}

func (l *logCapture) logf(t *testing.T, p int) func(string, ...any) {
	return func(format string, args ...any) {
		line := fmt.Sprintf(format, args...)
		l.mu.Lock()
		l.lines = append(l.lines, line)
		l.mu.Unlock()
		t.Logf("proc %d: %s", p, line)
	}
}

func (l *logCapture) contains(sub string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, line := range l.lines {
		if strings.Contains(line, sub) {
			return true
		}
	}
	return false
}

// TestMembershipCrashMidMigrationEquivalence is the crash-safe migration
// acceptance test: a 4-slot roster runs a scripted membership migration and
// process 3 is crashed between the migration's decision and its commit, so
// the leader must reconcile the in-flight move schedule against the death
// (fold the dead member's bins into the restore cut, redirect or drop the
// rest) instead of rejecting the overlap. Later, after the roster has shrunk
// to three, process 2 crashes too — its bins restore from a checkpoint whose
// manifests already record the shrunk roster (worker 3's manifest never
// existed, and roster-aware completeness must not wait for it). The merged
// per-key maximum count must equal an uninterrupted single-process run.
func TestMembershipCrashMidMigrationEquivalence(t *testing.T) {
	const (
		procs = 4
		wpp   = 1
		// Epoch timeline (slack 12 scales the decision margin to 96 epochs,
		// enough to absorb inter-process loop skew under the race detector):
		// checkpoints every 200 epochs; the first scripted migration is
		// decided at 300 and commits at ~396, with process 3 killed at 320 —
		// inside the decision-to-commit window, its migration moves still
		// pending when the death is declared. The second migration is pinned
		// at 450, after the kill but before the death declaration: it is
		// rendered against the full roster and ships bins into the silent
		// dead slot, whose restore the declaration barrier must fold in.
		// Both migrations are decided before any barrier can stall the
		// leader's loop (post-barrier epochs sprint to catch up with the
		// wall clock, which would void the decision margin). Process 2 is
		// killed at 1400, well clear of the first declaration, and restores
		// from a checkpoint whose manifests never included worker 3.
		durationEpochs  = 2600
		checkpointEvery = 200 * time.Millisecond
		migrateAt       = 300 * time.Millisecond
		migrateTwoAt    = 450 * time.Millisecond
		crash1At        = 320
		crash2At        = 1400
	)
	base := keycount.RunConfig{
		Params: keycount.Params{
			Variant: keycount.HashCount,
			LogBins: 4,
			Domain:  1 << 10,
			Preload: false,
		},
		Rate:       20000,
		Duration:   durationEpochs * time.Millisecond,
		EpochEvery: time.Millisecond,
	}

	var ref collector
	refCfg := base
	refCfg.Workers = procs * wpp
	refCfg.Sink = ref.add
	refRes, err := keycount.Run(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	if refRes.Records == 0 {
		t.Fatal("reference run injected no records")
	}

	specs := localClusterSpecs(t, procs)
	ckptDir := t.TempDir()
	var logs logCapture
	var clu collector
	var wg sync.WaitGroup
	errs := make([]error, procs)
	epochs := make([]int64, procs)
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			cfg := base
			cfg.Workers = wpp
			cfg.Cluster = &specs[p]
			cfg.Cluster.Logf = logs.logf(t, p)
			cfg.Sink = clu.add
			cfg.Membership = true
			cfg.CheckpointDir = ckptDir
			cfg.CheckpointEvery = checkpointEvery
			cfg.MembershipSlack = 12
			cfg.Strategy = plan.Batched
			cfg.Batch = 4
			cfg.MigrateAt = migrateAt
			cfg.MigrateTwo = true
			cfg.MigrateTwoAt = migrateTwoAt
			switch p {
			case 3:
				cfg.CrashAt = crash1At
			case 2:
				cfg.CrashAt = crash2At
			}
			res, err := keycount.Run(cfg)
			errs[p] = err
			epochs[p] = res.Epochs
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("process %d: %v", p, err)
		}
	}

	for _, p := range []int{2, 3} {
		if epochs[p] == durationEpochs {
			t.Fatalf("crash victim %d drove the full %d epochs without abandoning", p, durationEpochs)
		}
	}
	for _, p := range []int{0, 1} {
		if epochs[p] != durationEpochs {
			t.Fatalf("survivor %d stopped at epoch %d, want %d", p, epochs[p], durationEpochs)
		}
	}
	// The scripted migration must actually have been issued through the
	// membership plane, and both deaths declared.
	if !logs.contains("issued scripted migration") {
		t.Fatal("no scripted migration was ever issued through the membership controller")
	}
	if !logs.contains("decided crash-leave of process 3") {
		t.Fatal("death of process 3 (mid-migration) never declared")
	}
	if !logs.contains("decided crash-leave of process 2") {
		t.Fatal("death of process 2 (shrunk roster) never declared")
	}

	want := maxCounts(t, ref.lines)
	got := maxCounts(t, clu.lines)
	var off int
	for k, w := range want {
		if g := got[k]; g != w {
			off++
			if off <= 5 {
				t.Errorf("key %s: final count %d, reference %d", k, g, w)
			}
		}
	}
	if off > 0 {
		t.Fatalf("%d of %d keys differ from the uninterrupted reference", off, len(want))
	}
	if len(got) != len(want) {
		t.Fatalf("membership run produced %d distinct keys, reference %d", len(got), len(want))
	}
}

// TestMembershipAutoscaleJoin closes the elasticity loop end to end: a
// 4-slot roster starts with slot 3 as a registered standby (absent, waiting
// in AwaitAdmission) and the cluster runs a hot-shift workload whose mean
// per-worker load sits above the scale-out threshold. The membership leader,
// reading the autoscaler's load windows over the multiplexed control bus,
// must admit the standby — plain hello auto-admission is disabled when the
// autoscaler drives membership — after which the joiner runs to the end and
// the merged output still matches the uninterrupted reference. (RunMembership
// has no latency probe, so the "p99 settles" half of the story is asserted
// by scripts/cluster.sh autoscale against the real binaries; here admission
// and output equivalence are the invariants.)
func TestMembershipAutoscaleJoin(t *testing.T) {
	const (
		procs           = 4
		wpp             = 1
		durationEpochs  = 1000
		checkpointEvery = 200 * time.Millisecond
	)
	base := keycount.RunConfig{
		Params: keycount.Params{
			Variant: keycount.HashCount,
			LogBins: 4,
			Domain:  1 << 10,
			Preload: false,
		},
		Rate:       20000,
		Duration:   durationEpochs * time.Millisecond,
		EpochEvery: time.Millisecond,
		Workload: harness.Workload{
			Kind:        harness.HotShift,
			HotFraction: 0.85,
			HotKeys:     16,
			HotStride:   uint64((1 << 10) >> 4 * 2),
			ShiftEvery:  400,
		},
	}

	var ref collector
	refCfg := base
	refCfg.Workers = procs * wpp
	refCfg.Sink = ref.add
	refRes, err := keycount.Run(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	if refRes.Records == 0 {
		t.Fatal("reference run injected no records")
	}

	specs := localClusterSpecs(t, procs)
	absent := make([]bool, procs)
	absent[procs-1] = true
	ckptDir := t.TempDir()
	var logs logCapture
	var clu collector
	var wg sync.WaitGroup
	errs := make([]error, procs)
	epochs := make([]int64, procs)
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			cfg := base
			cfg.Workers = wpp
			cfg.Cluster = &specs[p]
			cfg.Cluster.Absent = absent
			cfg.Cluster.Logf = logs.logf(t, p)
			cfg.Sink = clu.add
			cfg.Membership = true
			cfg.CheckpointDir = ckptDir
			cfg.CheckpointEvery = checkpointEvery
			cfg.MembershipSlack = 6
			// Telemetry-only autoscaler: sample fast enough for the hot
			// streak to sustain well inside the run. At 20k rec/s over three
			// live workers a 50-epoch window holds ~333 recs/worker, far
			// above the threshold, so scale-out triggers as soon as the
			// telemetry coverage and sustain gates clear.
			cfg.Auto = &plan.AutoOptions{
				Policy:      plan.Static{},
				SampleEvery: 50,
			}
			cfg.ScaleOutAbove = 150
			cfg.ScaleSustain = 3
			res, err := keycount.Run(cfg)
			errs[p] = err
			epochs[p] = res.Epochs
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("process %d: %v", p, err)
		}
	}

	if !logs.contains("admitting standby") {
		t.Fatal("the autoscaler never admitted the registered standby")
	}
	if !logs.contains("decided join of process 3") {
		t.Fatal("the standby's join was never decided")
	}
	for p := 0; p < procs; p++ {
		if epochs[p] != durationEpochs {
			t.Fatalf("process %d stopped at epoch %d, want %d", p, epochs[p], durationEpochs)
		}
	}

	want := maxCounts(t, ref.lines)
	got := maxCounts(t, clu.lines)
	var off int
	for k, w := range want {
		if g := got[k]; g != w {
			off++
			if off <= 5 {
				t.Errorf("key %s: final count %d, reference %d", k, g, w)
			}
		}
	}
	if off > 0 {
		t.Fatalf("%d of %d keys differ from the reference", off, len(want))
	}
	if len(got) != len(want) {
		t.Fatalf("autoscale membership run produced %d distinct keys, reference %d", len(got), len(want))
	}
}
