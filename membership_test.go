// Dynamic-membership equivalence: the acceptance test of join, drain-leave
// and crash-leave on a live cluster. A 4-slot roster starts with slot 3
// absent; under continuous load the cluster admits the late joiner, survives
// an abrupt crash of process 2 (recovering only its bins from the latest
// complete checkpoint and replaying the bounded input window), and drains
// process 1 out cleanly — all without restarting the cluster. The merged
// output must be equivalent to an uninterrupted single-process run with the
// same total worker count. scripts/cluster.sh join-leave performs the same
// scenario against the real binaries with a real SIGKILL.
package megaphone_test

import (
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"megaphone/internal/core"
	"megaphone/internal/keycount"
)

// maxCounts folds "key:count" output lines into the final (maximum) count
// per key. Counts only grow, and crash recovery re-emits every epoch from
// the checkpoint on, so at-least-once duplication is expected across a
// crash: the per-key maximum is the deterministic quantity, equal to the
// key's total number of occurrences in the input stream.
func maxCounts(t *testing.T, lines []string) map[string]uint64 {
	t.Helper()
	out := make(map[string]uint64)
	for _, line := range lines {
		i := strings.IndexByte(line, ':')
		if i < 0 {
			t.Fatalf("malformed output line %q", line)
		}
		n, err := strconv.ParseUint(line[i+1:], 10, 64)
		if err != nil {
			t.Fatalf("malformed output line %q: %v", line, err)
		}
		if n > out[line[:i]] {
			out[line[:i]] = n
		}
	}
	return out
}

func TestMembershipJoinCrashDrainEquivalence(t *testing.T) {
	const (
		procs = 4
		wpp   = 1
		// Epoch timeline: slot 3 joins at startup (committed within the
		// first ~20 epochs), checkpoints land every 200 epochs, process 2
		// crashes at 450 (recovering from the complete full-roster
		// checkpoint at 400), process 1 drain-leaves at 700, and the two
		// survivors run out the remaining epochs.
		durationEpochs  = 1000
		checkpointEvery = 200 * time.Millisecond
		crashAt         = 450
		leaveAt         = 700
	)
	base := keycount.RunConfig{
		Params: keycount.Params{
			Variant: keycount.HashCount,
			LogBins: 4,
			Domain:  1 << 10,
			Preload: false,
		},
		Rate:       20000,
		Duration:   durationEpochs * time.Millisecond,
		EpochEvery: time.Millisecond,
	}

	// Uninterrupted single-process reference with the same total worker
	// count: the membership run's merged output must match its final count
	// for every key.
	var ref collector
	refCfg := base
	refCfg.Workers = procs * wpp
	refCfg.Sink = ref.add
	refRes, err := keycount.Run(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	if refRes.Records == 0 {
		t.Fatal("reference run injected no records")
	}

	specs := localClusterSpecs(t, procs)
	absent := make([]bool, procs)
	absent[procs-1] = true
	ckptDir := t.TempDir()

	var clu collector
	var wg sync.WaitGroup
	errs := make([]error, procs)
	epochs := make([]int64, procs)
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			cfg := base
			cfg.Workers = wpp
			cfg.Cluster = &specs[p]
			cfg.Cluster.Absent = absent
			cfg.Cluster.Logf = func(format string, args ...any) {
				t.Logf("proc %d: "+format, append([]any{p}, args...)...)
			}
			cfg.Sink = clu.add
			cfg.Membership = true
			cfg.CheckpointDir = ckptDir
			cfg.CheckpointEvery = checkpointEvery
			// Four race-instrumented runtimes sharing however few cores the
			// test machine has: widen the suspicion/death/margin windows so
			// scheduling jitter cannot fake a crash or outrun a commit.
			cfg.MembershipSlack = 6
			switch p {
			case 1:
				cfg.LeaveAt = leaveAt
			case 2:
				cfg.CrashAt = crashAt
			}
			res, err := keycount.Run(cfg)
			errs[p] = err
			epochs[p] = res.Epochs
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("process %d: %v", p, err)
		}
	}

	// The crashed process abandoned mid-run — at its crash epoch, or later
	// if the first full-roster checkpoint was still completing; the drained
	// process broke out shortly after its leave commit; the survivors
	// (including the joiner) ran the full range.
	if epochs[2] == durationEpochs {
		t.Fatalf("crash victim drove the full %d epochs without abandoning", durationEpochs)
	}
	if epochs[1] < leaveAt || epochs[1] == durationEpochs {
		t.Fatalf("leaver drove epoch %d, want departure in (%d, %d)", epochs[1], leaveAt, durationEpochs)
	}
	for _, p := range []int{0, procs - 1} {
		if epochs[p] != durationEpochs {
			t.Fatalf("survivor %d stopped at epoch %d, want %d", p, epochs[p], durationEpochs)
		}
	}

	// Output equivalence under at-least-once replay: final count per key.
	want := maxCounts(t, ref.lines)
	got := maxCounts(t, clu.lines)
	var low, high int
	binsOff := map[int]int{}
	for k, w := range want {
		g := got[k]
		if g == w {
			continue
		}
		if g < w {
			low++
		} else {
			high++
		}
		key, _ := strconv.ParseUint(k, 10, 64)
		binsOff[core.BinOf(core.Mix64(key), 4)]++
		if low+high <= 5 {
			t.Errorf("key %s: final count %d, reference %d", k, g, w)
		}
	}
	if low+high > 0 {
		t.Fatalf("%d keys under reference, %d over (of %d distinct; mismatches per bin %v)",
			low, high, len(want), binsOff)
	}
	if len(got) != len(want) {
		t.Fatalf("membership run produced %d distinct keys, reference %d", len(got), len(want))
	}
}
