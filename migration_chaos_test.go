// Transport failure during an active migration: a 2-process cluster routes
// its one TCP session through a killable proxy, a multi-step migration is
// started, and the connection is severed by byte count shortly after the
// first step goes out — mid chunk stream. The transport's
// reconnect-with-replay must redeliver the lost StateMsg frames exactly
// once: every moved bin installs exactly once at its new owner
// (Handle.OnInstall) and the output multiset matches a single-process run.
// Runs under -race in CI.
package megaphone_test

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"megaphone/internal/core"
	"megaphone/internal/dataflow"
	"megaphone/internal/operators"
	"megaphone/internal/plan"
)

// chaosProxy forwards one TCP address to a backend, counting
// client->backend bytes, and severs every active connection once an armed
// byte threshold is crossed. The listener keeps accepting afterwards, so
// the transport's redial comes back through the proxy.
type chaosProxy struct {
	ln      net.Listener
	backend string

	mu    sync.Mutex
	conns []net.Conn

	forwarded atomic.Int64
	killAt    atomic.Int64 // 0 = disarmed
	once      sync.Once
	severed   chan struct{}
}

func startChaosProxy(t *testing.T, backend string) *chaosProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &chaosProxy{ln: ln, backend: backend, severed: make(chan struct{})}
	go p.accept()
	return p
}

func (p *chaosProxy) addr() string { return p.ln.Addr().String() }

// armAfter severs all connections once extra more client->backend bytes
// have been forwarded.
func (p *chaosProxy) armAfter(extra int64) {
	p.killAt.Store(p.forwarded.Load() + extra)
}

func (p *chaosProxy) accept() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		b, err := net.Dial("tcp", p.backend)
		if err != nil {
			c.Close()
			continue
		}
		p.mu.Lock()
		p.conns = append(p.conns, c, b)
		p.mu.Unlock()
		go func() {
			io.Copy(b, &countingReader{r: c, p: p})
			b.Close()
		}()
		go func() {
			io.Copy(c, b)
			c.Close()
		}()
	}
}

// sever closes every live pipe (once): both halves of the session see a
// broken connection mid-frame.
func (p *chaosProxy) sever() {
	p.once.Do(func() {
		p.mu.Lock()
		for _, c := range p.conns {
			c.Close()
		}
		p.conns = p.conns[:0]
		p.mu.Unlock()
		close(p.severed)
	})
}

func (p *chaosProxy) close() { p.ln.Close(); p.sever() }

type countingReader struct {
	r io.Reader
	p *chaosProxy
}

func (cr *countingReader) Read(b []byte) (int, error) {
	n, err := cr.r.Read(b)
	total := cr.p.forwarded.Add(int64(n))
	if at := cr.p.killAt.Load(); at > 0 && total >= at {
		cr.p.sever()
	}
	return n, err
}

type migChaosState = core.MapState[uint64, uint64]

// buildMigChaos wires the hash-count dataflow with a tiny ChunkBytes so a
// bin's migration payload spans many StateMsg chunks.
func buildMigChaos(w *dataflow.Worker, ctl dataflow.Stream[core.Move], data dataflow.Stream[uint64],
	h *core.Handle[uint64, migChaosState, [2]uint64], collect func(string)) *dataflow.Probe {
	out := core.Unary(w,
		core.Config{Name: "mig-chaos", LogBins: 3, Transfer: core.TransferBinary, ChunkBytes: 512},
		ctl, data,
		func(k uint64) uint64 { return core.Mix64(k) },
		func() *migChaosState { return &migChaosState{M: make(map[uint64]uint64)} },
		func(t core.Time, k uint64, s *migChaosState, _ *core.Notificator[uint64, migChaosState, [2]uint64], emit func([2]uint64)) {
			s.M[k]++
			emit([2]uint64{k, s.M[k]})
		},
		h)
	operators.Sink(w, "collect", out, func(_ core.Time, recs [][2]uint64) {
		for _, r := range recs {
			collect(fmt.Sprintf("%d:%d", r[0], r[1]))
		}
	})
	return dataflow.NewProbe(w, out)
}

// preloadMigChaos fills the bins initially owned by worker 1 (the ones the
// plan moves) with enough synthetic entries that each migration step is a
// multi-kilobyte chunk stream.
func preloadMigChaos(h *core.Handle[uint64, migChaosState, [2]uint64]) {
	for bin := 1; bin < 8; bin += 2 {
		bin := bin
		h.Preload(1, bin, func(s *migChaosState) {
			if s.M == nil {
				s.M = make(map[uint64]uint64)
			}
			for i := uint64(0); i < 2048; i++ {
				s.M[uint64(bin)<<32|(1<<20)+i] = i%13 + 1
			}
		})
	}
}

// runMigChaos drives one participant (or the single-process reference when
// spec is nil): 60 epochs of deterministic input, a 4-step batched
// migration of worker 1's bins to worker 0 starting at epoch 20, with
// onIssue invoked when this process's controller sends the first step.
func runMigChaos(t *testing.T, spec *dataflow.ClusterSpec, workers int,
	collect func(string), h *core.Handle[uint64, migChaosState, [2]uint64], onIssue func()) error {
	const epochs, perEpochPerWorker = 60, 32
	var mesh *dataflow.Mesh
	if spec != nil {
		var err error
		mesh, err = dataflow.JoinMesh(*spec)
		if err != nil {
			return err
		}
	}
	exec := dataflow.NewExecution(dataflow.Config{Workers: workers, Mesh: mesh})
	var dataIns []*dataflow.InputHandle[uint64]
	var ctlIns []*dataflow.InputHandle[core.Move]
	var probe *dataflow.Probe
	first := 0
	if spec != nil {
		first = spec.Process * workers
	}
	exec.Build(func(w *dataflow.Worker) {
		ctl, ctlStream := dataflow.NewInput[core.Move](w, "control")
		ctlIns = append(ctlIns, ctl)
		in, data := dataflow.NewInput[uint64](w, "data")
		dataIns = append(dataIns, in)
		p := buildMigChaos(w, ctlStream, data, h, collect)
		if w.Index() == first {
			probe = p
		}
	})
	// Preload worker 1's bins in whichever process hosts worker 1.
	if spec == nil || spec.Process == 1 {
		preloadMigChaos(h)
	}
	exec.Start()

	ctl := plan.NewController(ctlIns, probe)
	if onIssue != nil {
		ctl.OnStepIssued = func(step int, _ core.Time) {
			if step == 0 {
				onIssue()
			}
		}
	}
	mig := plan.Build(plan.Batched, plan.Initial(8, 2), plan.Rebalance(8, []int{0}), 1)

	// Each global worker injects its residue class of a deterministic key
	// stream, exactly as in the cluster equivalence tests.
	for e := core.Time(1); e <= epochs; e++ {
		for li, in := range dataIns {
			g := uint64(first + li)
			batch := make([]uint64, perEpochPerWorker)
			for i := range batch {
				batch[i] = core.Mix64(uint64(e)*1000+g*100+uint64(i)) % 4096
			}
			in.SendBatchAt(e, batch)
		}
		if e == 20 {
			ctl.Start(mig)
		}
		ctl.Tick(e)
		for _, in := range dataIns {
			in.AdvanceTo(e + 1)
		}
	}
	for e := core.Time(epochs + 1); !ctl.Idle(); e++ {
		ctl.Tick(e)
		for _, in := range dataIns {
			in.AdvanceTo(e + 1)
		}
	}
	ctl.Close()
	for _, in := range dataIns {
		in.Close()
	}
	exec.Wait()
	return nil
}

func TestMigrationSurvivesConnLoss(t *testing.T) {
	testMigrationSurvivesConnLoss(t, nil)
}

// TestMigrationSurvivesConnLossBatched is the same chaos scenario under
// aggressively batched framing: a tiny mesh coalescing threshold makes
// every scheduling ship many small multi-record data frames, which the
// transport then packs into kindBatch frames across two striped lanes — so
// the cut lands inside a coalesced multi-record frame, and the replay must
// deduplicate at sub-frame granularity on both lanes.
func TestMigrationSurvivesConnLossBatched(t *testing.T) {
	testMigrationSurvivesConnLoss(t, func(s *dataflow.ClusterSpec) {
		s.Conns = 2
		s.CoalesceBytes = 512
	})
}

func testMigrationSurvivesConnLoss(t *testing.T, tweak func(*dataflow.ClusterSpec)) {
	// Single-process reference.
	var refMu sync.Mutex
	ref := make(map[string]int)
	refHandle := &core.Handle[uint64, migChaosState, [2]uint64]{}
	if err := runMigChaos(t, nil, 2, func(s string) {
		refMu.Lock()
		ref[s]++
		refMu.Unlock()
	}, refHandle, nil); err != nil {
		t.Fatal(err)
	}
	if len(ref) == 0 {
		t.Fatal("reference run produced no output")
	}

	// Cluster: every TCP session (process 1 dials process 0, one per lane)
	// runs through the proxy; hosts lists the proxy as process 0's address
	// while process 0 actually listens on a pre-bound backend listener.
	backend, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	proxy := startChaosProxy(t, backend.Addr().String())
	defer proxy.close()
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hosts := []string{proxy.addr(), ln1.Addr().String()}
	specs := []dataflow.ClusterSpec{
		{Hosts: hosts, Process: 0, Listener: backend, DialTimeout: 15 * time.Second},
		{Hosts: hosts, Process: 1, Listener: ln1, DialTimeout: 15 * time.Second},
	}
	if tweak != nil {
		for i := range specs {
			tweak(&specs[i])
		}
	}

	var cluMu sync.Mutex
	clu := make(map[string]int)
	collect := func(s string) {
		cluMu.Lock()
		clu[s]++
		cluMu.Unlock()
	}
	var installMu sync.Mutex
	installs := make(map[int]int)
	handles := [2]*core.Handle[uint64, migChaosState, [2]uint64]{{}, {}}
	handles[0].OnInstall = func(_ core.Time, bin, worker int) {
		installMu.Lock()
		installs[bin]++
		installMu.Unlock()
	}

	var wg sync.WaitGroup
	errs := [2]error{}
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			var onIssue func()
			if p == 1 {
				// Once the migration is underway, sever the session a few
				// KB later: the 4 steps ship ~100 KiB of chunked state, so
				// the cut lands inside the stream and the replayed frames
				// must deduplicate.
				onIssue = func() { proxy.armAfter(4 << 10) }
			}
			errs[p] = runMigChaos(t, &specs[p], 1, collect, handles[p], onIssue)
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("process %d: %v", p, err)
		}
	}

	select {
	case <-proxy.severed:
	default:
		t.Fatal("the proxy was never severed: the test did not exercise a connection loss")
	}

	// Exactly-once install per moved bin, despite the replay.
	installMu.Lock()
	defer installMu.Unlock()
	for bin := 1; bin < 8; bin += 2 {
		if installs[bin] != 1 {
			t.Errorf("bin %d installed %d times on worker 0, want exactly 1", bin, installs[bin])
		}
	}
	for bin, n := range installs {
		if bin%2 == 0 && n != 0 {
			t.Errorf("bin %d was never moved but installed %d times", bin, n)
		}
	}

	if len(clu) != len(ref) {
		t.Fatalf("cluster emitted %d distinct outputs, reference %d", len(clu), len(ref))
	}
	for k, v := range ref {
		if clu[k] != v {
			t.Fatalf("output %q: cluster %d, reference %d", k, clu[k], v)
		}
	}
}
